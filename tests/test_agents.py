"""Unit tests for the service-agent core, coordinator and recovery."""

import pytest

from repro.agents import (
    AgentCore,
    AgentState,
    Coordinator,
    SendAdapt,
    SendResult,
    StartInvocation,
    StatusUpdate,
    rebuild_agent,
    replay_messages,
)
from repro.hoclflow import encode_workflow
from repro.messaging import Message, MessageKind, agent_topic
from repro.workflow import AdaptationSpec, Task, Workflow, diamond_workflow


def encodings_for(workflow):
    return encode_workflow(workflow).tasks


def fig5_workflow():
    workflow = Workflow("fig5")
    workflow.add_task(Task("T1", "s1", inputs=["input"]))
    workflow.add_task(Task("T2", "s2", metadata={"force_error": True}))
    workflow.add_task(Task("T3", "s3"))
    workflow.add_task(Task("T4", "s4"))
    workflow.add_dependency("T1", "T2")
    workflow.add_dependency("T1", "T3")
    workflow.add_dependency("T2", "T4")
    workflow.add_dependency("T3", "T4")
    replacement = Workflow("alt")
    replacement.add_task(Task("T2p", "s2alt"))
    workflow.add_adaptation(
        AdaptationSpec("replace-T2", ["T2"], replacement, entry_sources={"T2p": ["T1"]})
    )
    return workflow


class TestAgentLifecycle:
    def test_entry_task_starts_invocation_at_boot(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        core = AgentCore(encodings["split"])
        actions = core.boot()
        invocations = [a for a in actions if isinstance(a, StartInvocation)]
        assert len(invocations) == 1
        assert invocations[0].parameters == ("input",)
        assert core.invocation_requested

    def test_waiting_task_does_not_invoke_at_boot(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        core = AgentCore(encodings["merge"])
        actions = core.boot()
        assert not any(isinstance(a, StartInvocation) for a in actions)
        assert set(core.pending_sources()) == {"T_1_1", "T_1_2"}

    def test_boot_emits_status(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        core = AgentCore(encodings["split"])
        assert any(isinstance(a, StatusUpdate) for a in core.boot())

    def test_result_propagation_after_invocation(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        core = AgentCore(encodings["split"])
        core.boot()
        actions = core.invocation_succeeded("split-out")
        sends = [a for a in actions if isinstance(a, SendResult)]
        assert {send.destination for send in sends} == {"T_1_1", "T_1_2"}
        assert all(send.value == "split-out" for send in sends)
        assert core.state == AgentState.COMPLETED
        assert core.has_result()
        assert core.result_value() == "split-out"
        assert core.pending_destinations() == []

    def test_receive_result_triggers_invocation_once_all_sources_arrive(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        core = AgentCore(encodings["merge"])
        core.boot()
        first = core.receive_result("T_1_1", "a")
        assert not any(isinstance(a, StartInvocation) for a in first)
        second = core.receive_result("T_1_2", "b")
        invocations = [a for a in second if isinstance(a, StartInvocation)]
        assert len(invocations) == 1
        # parameters ordered by source task name
        assert invocations[0].parameters == ("a", "b")

    def test_duplicate_results_ignored(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        core = AgentCore(encodings["merge"])
        core.boot()
        core.receive_result("T_1_1", "a")
        duplicate = core.receive_result("T_1_1", "a-again")
        assert duplicate == []
        assert core.duplicates_ignored == 1

    def test_unknown_source_ignored(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        core = AgentCore(encodings["merge"])
        core.boot()
        assert core.receive_result("stranger", "x") == []

    def test_invocation_failure_sets_error(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        core = AgentCore(encodings["split"])
        core.boot()
        actions = core.invocation_failed("boom")
        assert core.has_error()
        assert core.state == AgentState.FAILED
        assert not any(isinstance(a, SendResult) for a in actions)

    def test_status_snapshot(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        core = AgentCore(encodings["merge"])
        core.boot()
        status = core.status()
        assert status["task"] == "merge"
        assert status["state"] == AgentState.READY
        assert set(status["pending_sources"]) == {"T_1_1", "T_1_2"}

    def test_reduction_counters_increase(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        core = AgentCore(encodings["split"])
        core.boot()
        assert core.reactions > 0
        assert core.match_attempts > 0
        assert core.reduction_units > 0


class TestAgentAdaptation:
    def test_error_on_trigger_task_broadcasts_adapt(self):
        encodings = encodings_for(fig5_workflow())
        core = AgentCore(encodings["T2"])
        core.boot()
        core.receive_result("T1", "r1")
        actions = core.invocation_failed("forced")
        adapt = [a for a in actions if isinstance(a, SendAdapt)]
        assert {a.destination for a in adapt} == {"T1", "T4", "T2p"}
        assert all(a.adaptation == "replace-T2" for a in adapt)

    def test_source_resends_to_replacement_after_adapt(self):
        encodings = encodings_for(fig5_workflow())
        core = AgentCore(encodings["T1"])
        core.boot()
        core.invocation_succeeded("r1")  # sends to T2, T3; DST now empty
        actions = core.receive_adapt(1)
        sends = [a for a in actions if isinstance(a, SendResult)]
        assert [send.destination for send in sends] == ["T2p"]
        assert sends[0].value == "r1"

    def test_destination_swaps_sources_on_adapt(self):
        encodings = encodings_for(fig5_workflow())
        core = AgentCore(encodings["T4"])
        core.boot()
        core.receive_result("T3", "r3")
        core.receive_adapt(1)
        assert set(core.pending_sources()) == {"T2p"}
        # T3's already-received input must be preserved (default mv_src policy)
        core.receive_result("T2p", "r2p")
        assert core.invocation_requested

    def test_replacement_entry_waits_for_trigger(self):
        encodings = encodings_for(fig5_workflow())
        core = AgentCore(encodings["T2p"])
        core.boot()
        # even if T1's result arrives first, TRIGGER keeps it idle
        core.receive_result("T1", "r1")
        assert not core.invocation_requested
        core.receive_adapt(1)
        assert core.invocation_requested

    def test_replacement_entry_trigger_then_result(self):
        encodings = encodings_for(fig5_workflow())
        core = AgentCore(encodings["T2p"])
        core.boot()
        core.receive_adapt(1)
        assert not core.invocation_requested
        core.receive_result("T1", "r1")
        assert core.invocation_requested

    def test_stale_result_from_replaced_task_ignored_after_adapt(self):
        encodings = encodings_for(fig5_workflow())
        core = AgentCore(encodings["T4"])
        core.boot()
        core.receive_adapt(1)
        assert core.receive_result("T2", "late") == []
        assert core.duplicates_ignored == 1


class TestCoordinator:
    def test_requires_exit_tasks(self):
        with pytest.raises(ValueError):
            Coordinator(exit_tasks=[])

    def test_completion_detection(self):
        completions = []
        coordinator = Coordinator(exit_tasks=["merge"], on_complete=completions.append)
        coordinator.record_status("merge", {"state": "completed", "has_result": False}, time=1.0)
        assert not coordinator.completed
        coordinator.record_status("merge", {"state": "completed", "has_result": True}, time=2.0)
        assert coordinator.completed
        assert coordinator.completion_time == 2.0
        assert completions == [2.0]

    def test_completion_requires_all_exits(self):
        coordinator = Coordinator(exit_tasks=["a", "b"])
        coordinator.record_status("a", {"has_result": True}, time=1.0)
        assert not coordinator.completed
        coordinator.record_status("b", {"has_result": True}, time=2.0)
        assert coordinator.completed

    def test_timeline_records_state_changes_only(self):
        coordinator = Coordinator(exit_tasks=["a"])
        coordinator.record_status("a", {"state": "ready"}, time=1.0)
        coordinator.record_status("a", {"state": "ready"}, time=2.0)
        coordinator.record_status("a", {"state": "invoking"}, time=3.0)
        assert [event.event for event in coordinator.timeline] == ["ready", "invoking"]

    def test_progress_and_queries(self):
        coordinator = Coordinator(exit_tasks=["b"])
        coordinator.record_status("a", {"state": "completed", "has_result": True}, time=1.0)
        coordinator.record_status("b", {"state": "failed", "has_error": True}, time=2.0)
        assert coordinator.progress() == 0.5
        assert coordinator.task_state("a") == "completed"
        assert coordinator.task_state("zzz") == "unknown"
        assert coordinator.tasks_in_state("failed") == ["b"]
        assert coordinator.error_tasks() == ["b"]


class TestRecovery:
    def test_replay_reaches_same_state(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        # original agent receives both results
        original = AgentCore(encodings["merge"])
        original.boot()
        original.receive_result("T_1_1", "a")
        original.receive_result("T_1_2", "b")

        messages = [
            Message(topic=agent_topic("merge"), kind=MessageKind.RESULT, sender="T_1_1", recipient="merge", payload="a"),
            Message(topic=agent_topic("merge"), kind=MessageKind.RESULT, sender="T_1_2", recipient="merge", payload="b"),
        ]
        rebuilt, actions = rebuild_agent(encodings["merge"], messages)
        assert rebuilt.pending_sources() == original.pending_sources() == []
        assert rebuilt.current_parameters() == original.current_parameters()
        assert any(isinstance(a, StartInvocation) for a in actions)

    def test_replay_ignores_status_messages(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        core = AgentCore(encodings["merge"])
        core.boot()
        noise = [Message(topic=agent_topic("merge"), kind=MessageKind.STATUS, sender="x", recipient="merge", payload={})]
        assert replay_messages(core, noise) == []

    def test_replay_adapt_messages(self):
        encodings = encodings_for(fig5_workflow())
        messages = [
            Message(topic=agent_topic("T2p"), kind=MessageKind.RESULT, sender="T1", recipient="T2p", payload="r1"),
            Message(topic=agent_topic("T2p"), kind=MessageKind.ADAPT, sender="T2", recipient="T2p", payload=1),
        ]
        rebuilt, actions = rebuild_agent(encodings["T2p"], messages)
        assert rebuilt.invocation_requested
        assert any(isinstance(a, StartInvocation) for a in actions)

    def test_duplicate_sends_after_recovery_are_harmless(self):
        encodings = encodings_for(diamond_workflow(2, 1))
        destination = AgentCore(encodings["merge"])
        destination.boot()
        destination.receive_result("T_1_1", "a")
        destination.receive_result("T_1_2", "b")
        invoked_before = destination.invocation_requested
        # a recovered upstream agent re-sends its result
        assert destination.receive_result("T_1_1", "a") == []
        assert destination.invocation_requested == invoked_before
        assert destination.duplicates_ignored == 1
