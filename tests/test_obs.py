"""Tests for the observability subsystem (repro.obs).

The tentpole contract under test: tracing is *zero-overhead when off* (a
``None`` tracer, one pointer check per seam) and *identity-preserving when
on* — a traced run produces the same results, fire counters and (simulated)
timeline as an untraced one, because instrumentation only reads values the
engine already computed.  On top of that: the record model round-trips
through both file formats, the Chrome export is Perfetto-loadable, the
summarizer's phase totals reconcile with ``RunReport.extra["reduction_timings"]``
to float precision, and the CLI surface (``--trace``, ``ginflow trace
summarize|convert``) works end to end.
"""

import json
import logging
import math
import pickle

import pytest

from repro.cli import main
from repro.obs import (
    EventRecord,
    JsonlTracer,
    MetricsRegistry,
    NullTracer,
    Observability,
    RecordingTracer,
    SpanRecord,
    active,
    record_from_json,
)
from repro.obs.export import (
    from_chrome,
    read_jsonl,
    read_trace,
    to_chrome,
    write_chrome,
    write_jsonl,
    write_trace,
)
from repro.obs.logs import configure_logging, get_logger
from repro.obs.summarize import format_summary, summarize
from repro.runtime import GinFlow, GinFlowConfig
from repro.workflow import diamond_workflow, workflow_to_json

MODES = ("simulated", "threaded", "asyncio", "centralized")
REDUCTIONS = ("serial", "batch", "parallel")


def run_diamond(mode, reduction="serial", obs=None, seed=3):
    config = GinFlowConfig(mode=mode, nodes=4, seed=seed, reduction=reduction, obs=obs)
    return GinFlow(config).run(diamond_workflow(2, 2, duration=0.05), timeout=60.0)


def fingerprint(report):
    """Everything a tracer must not change, in one comparable value."""
    return {
        "succeeded": report.succeeded,
        "timed_out": report.timed_out,
        "rule_fires": dict(report.extra.get("rule_fires", {})),
        "reactions": report.reduction_reactions,
        "states": {name: outcome.state for name, outcome in report.tasks.items()},
        "results": {name: outcome.result for name, outcome in report.tasks.items()},
    }


# ------------------------------------------------------------------- tracers
class TestTracerModel:
    def test_span_record_roundtrip(self):
        span = SpanRecord(name="s", track="t", start=1.0, end=2.5, vt=7.0, attrs={"k": 1})
        back = record_from_json(span.to_json())
        assert back == span
        assert back.duration == 1.5

    def test_event_record_roundtrip(self):
        event = EventRecord(name="e", track="t", time=3.0, attrs={"count": 2})
        assert record_from_json(event.to_json()) == event

    def test_record_from_json_rejects_garbage(self):
        with pytest.raises(ValueError):
            record_from_json({"name": "x"})

    def test_active_normalises_off_tracers_to_none(self):
        assert active(None) is None
        assert active(NullTracer()) is None
        tracer = RecordingTracer()
        assert active(tracer) is tracer

    def test_recording_tracer_collects_spans_and_events(self):
        tracer = RecordingTracer()
        tracer.span("work", "a", 0.0, 1.0, rule="r")
        tracer.event("ping", "a", time=0.5, count=3)
        (span,) = tracer.spans
        (event,) = tracer.events
        assert span.name == "work" and span.attrs == {"rule": "r"} and span.vt is None
        assert event.time == 0.5 and event.attrs == {"count": 3}
        assert tracer.records() == [span, event]

    def test_vt_source_stamps_every_record(self):
        tracer = RecordingTracer()
        tracer.vt_source = lambda: 42.0
        tracer.span("work", "a", 0.0, 1.0)
        tracer.event("ping", "a", time=0.5)
        assert tracer.spans[0].vt == 42.0
        assert tracer.events[0].vt == 42.0

    def test_event_defaults_to_now(self):
        tracer = RecordingTracer()
        tracer.event("ping", "a")
        assert tracer.events[0].time > 0.0

    def test_jsonl_tracer_streams_and_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(str(path))
        tracer.span("work", "a", 0.0, 1.0)
        tracer.event("ping", "b", time=0.5)
        tracer.close()
        tracer.close()  # idempotent
        records = read_jsonl(str(path))
        assert [type(r).__name__ for r in records] == ["SpanRecord", "EventRecord"]

    def test_tracers_survive_pickling(self, tmp_path):
        recording = RecordingTracer()
        recording.span("work", "a", 0.0, 1.0)
        clone = pickle.loads(pickle.dumps(recording))
        assert clone.spans == recording.spans
        clone.span("more", "a", 1.0, 2.0)  # the lock was restored

        jsonl = JsonlTracer(str(tmp_path / "t.jsonl"))
        jsonl.span("work", "a", 0.0, 1.0)
        clone = pickle.loads(pickle.dumps(jsonl))
        clone.span("more", "a", 1.0, 2.0)
        clone.close()
        jsonl.close()


# ------------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.0)
        registry.gauge("g").set(7)
        for value in (1.0, 3.0, 2.0):
            registry.histogram("h").observe(value)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"] == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }
        json.dumps(snap)  # JSON-safe by contract

    def test_empty_histogram_summary(self):
        summary = MetricsRegistry().histogram("h").summary()
        assert summary == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}

    def test_registry_survives_pickling(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        clone = pickle.loads(pickle.dumps(registry))
        clone.counter("c").inc()
        assert clone.snapshot()["counters"] == {"c": 2.0}


# ------------------------------------------------------------------- exports
def sample_records():
    return [
        SpanRecord(name="agent.boot", track="a", start=0.0, end=1.0, vt=0.0),
        SpanRecord(
            name="reduction.match", track="a", start=0.1, end=0.4,
            vt=0.0, attrs={"rule": "gw_setup", "depth": 0},
        ),
        SpanRecord(
            name="reduction.rewrite", track="a", start=0.4, end=0.6,
            vt=0.0, attrs={"rule": "gw_setup", "index_seconds": 0.05},
        ),
        EventRecord(name="broker.publish", track="broker", time=0.5, attrs={"topic": "t"}),
    ]


class TestExport:
    def test_jsonl_roundtrip_is_exact(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(sample_records(), path)
        assert read_jsonl(path) == sample_records()

    def test_chrome_structure(self):
        payload = to_chrome(sample_records())
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        # one thread per track, 1-based tids by first appearance
        assert [(m["tid"], m["args"]["name"]) for m in meta] == [(1, "a"), (2, "broker")]
        assert all(e["pid"] == 0 for e in events)
        assert len(spans) == 3 and len(instants) == 1
        boot = next(e for e in spans if e["name"] == "agent.boot")
        assert boot["ts"] == 0.0 and boot["dur"] == pytest.approx(1e6)
        assert instants[0]["s"] == "t"

    def test_chrome_roundtrip_preserves_records(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome(sample_records(), path)
        payload = json.loads(open(path).read())
        back = from_chrome(payload)
        for original, restored in zip(sample_records(), back):
            assert type(original) is type(restored)
            assert original.name == restored.name and original.track == restored.track
            assert restored.vt == original.vt
            if isinstance(original, SpanRecord):
                assert math.isclose(original.start, restored.start, abs_tol=1e-9)
                assert math.isclose(original.end, restored.end, abs_tol=1e-9)
                assert {k: v for k, v in original.attrs.items()} == restored.attrs
            else:
                assert math.isclose(original.time, restored.time, abs_tol=1e-9)

    def test_read_trace_autodetects_both_formats(self, tmp_path):
        jsonl = str(tmp_path / "t.jsonl")
        chrome = str(tmp_path / "t.json")
        write_trace(sample_records(), jsonl, fmt="jsonl")
        write_trace(sample_records(), chrome, fmt="chrome")
        assert read_trace(jsonl) == sample_records()
        assert [r.name for r in read_trace(chrome)] == [r.name for r in sample_records()]

    def test_write_trace_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace([], str(tmp_path / "t"), fmt="protobuf")


# ----------------------------------------------------------------- summarize
class TestSummarize:
    def test_rollup_numbers(self):
        summary = summarize(sample_records())
        assert summary["spans"] == 3 and summary["events"] == 1 and summary["tracks"] == 2
        assert summary["phases"] == pytest.approx(
            {"match": 0.3, "rewrite": 0.2, "patch": 0.0, "index": 0.05}
        )
        # boot's self-time excludes its two nested reduction spans
        track = summary["per_track"]["a"]
        assert track["spans"] == 3
        assert track["busy_seconds"] == pytest.approx(1.0)
        assert summary["per_rule"]["gw_setup"] == pytest.approx({"fires": 2, "seconds": 0.5})
        assert summary["top_spans"][0]["name"] == "agent.boot"
        assert summary["top_spans"][0]["self_seconds"] == pytest.approx(0.5)

    def test_format_summary_text(self):
        text = format_summary(summarize(sample_records()))
        assert "trace summary: 3 spans, 1 events, 2 tracks" in text
        assert "window: 1.000000s" in text
        assert "reduction phase seconds:" in text
        assert "match    0.300000" in text
        assert "per-agent rollup:" in text
        assert "per-rule rollup:" in text
        assert "gw_setup" in text
        assert "top 3 spans by self-time:" in text

    def test_empty_trace_summarizes(self):
        summary = summarize([])
        assert summary["spans"] == 0 and summary["window"] == {}
        assert "0 spans" in format_summary(summary)


# ---------------------------------------------------------- trace identity
class TestTraceIdentity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("reduction", REDUCTIONS)
    def test_traced_run_identical_to_untraced(self, mode, reduction):
        plain = run_diamond(mode, reduction)
        obs = Observability(tracer=RecordingTracer(), metrics=MetricsRegistry())
        traced = run_diamond(mode, reduction, obs=obs)
        assert plain.succeeded and traced.succeeded
        assert fingerprint(traced) == fingerprint(plain)
        if mode == "simulated":
            assert traced.makespan == plain.makespan
            assert [
                (event.time, event.task, event.event) for event in traced.timeline
            ] == [(event.time, event.task, event.event) for event in plain.timeline]
        # and the trace actually recorded the reduction work
        names = {span.name for span in obs.tracer.spans}
        assert "reduction.match" in names

    def test_null_tracer_run_identical_to_none(self):
        plain = run_diamond("simulated")
        nulled = run_diamond("simulated", obs=Observability(tracer=NullTracer()))
        assert fingerprint(nulled) == fingerprint(plain)
        assert nulled.makespan == plain.makespan

    def test_simulated_records_are_virtual_time_stamped(self):
        obs = Observability(tracer=RecordingTracer())
        report = run_diamond("simulated", obs=obs)
        assert report.succeeded
        stamped = [span for span in obs.tracer.spans if span.vt is not None]
        assert stamped, "simulated runs must stamp spans with virtual time"
        assert max(span.vt for span in stamped) <= report.makespan + 1e-9

    def test_metrics_snapshot_lands_in_report(self):
        obs = Observability(tracer=RecordingTracer(), metrics=MetricsRegistry())
        report = run_diamond("simulated", obs=obs)
        counters = report.extra["metrics"]["counters"]
        assert counters["broker.published"] == report.messages_published
        assert counters["broker.delivered"] == report.messages_delivered
        assert counters["enactment.invocations"] == len(report.tasks)

    def test_centralized_reduction_timings_in_report(self):
        report = run_diamond("centralized")
        timings = report.extra["reduction_timings"]
        assert set(timings) >= {"match", "rewrite", "patch", "index"}
        assert timings["match"] > 0.0


# ------------------------------------------------------------ reconciliation
class TestReconciliation:
    @pytest.mark.parametrize("mode", ["simulated", "centralized"])
    def test_span_totals_match_report_timings(self, mode):
        obs = Observability(tracer=RecordingTracer(), metrics=MetricsRegistry())
        report = run_diamond(mode, obs=obs)
        assert report.succeeded
        timings = report.extra["reduction_timings"]
        phases = summarize(obs.tracer.records())["phases"]
        for phase in ("match", "rewrite", "patch", "index"):
            assert math.isclose(
                phases[phase], timings.get(phase, 0.0), rel_tol=1e-6, abs_tol=1e-9
            ), f"{phase}: spans {phases[phase]} vs report {timings.get(phase)}"

    def test_reduction_spans_nest_inside_stimulus_spans(self):
        obs = Observability(tracer=RecordingTracer())
        assert run_diamond("simulated", obs=obs).succeeded
        windows = {}
        for span in obs.tracer.spans:
            if span.name.startswith("agent."):
                windows.setdefault(span.track, []).append((span.start, span.end))
        reductions = [s for s in obs.tracer.spans if s.name.startswith("reduction.")]
        assert reductions
        for span in reductions:
            assert any(
                start <= span.start and span.end <= end
                for start, end in windows.get(span.track, [])
            ), f"orphan {span.name} on {span.track}"


# ----------------------------------------------------------------- logging
class TestLogging:
    def test_library_logger_namespace_and_null_handler(self):
        assert get_logger("agents.t1").name == "repro.agents.t1"
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_configure_logging_is_idempotent(self):
        configure_logging("DEBUG")
        configure_logging("INFO")
        root = logging.getLogger("repro")
        stream_handlers = [
            h for h in root.handlers
            if isinstance(h, logging.StreamHandler) and not isinstance(h, logging.NullHandler)
        ]
        assert len(stream_handlers) == 1
        assert root.level == logging.INFO


# --------------------------------------------------------------------- CLI
@pytest.fixture()
def workflow_file(tmp_path):
    path = tmp_path / "wf.json"
    workflow_to_json(diamond_workflow(2, 2, duration=0.05), path)
    return str(path)


class TestObsCLI:
    def test_run_with_jsonl_trace(self, workflow_file, tmp_path, capsys):
        trace = tmp_path / "run.trace.jsonl"
        assert main(["run", workflow_file, "--trace", str(trace)]) == 0
        records = read_trace(str(trace))
        names = {record.name for record in records}
        assert "reduction.match" in names and "broker.publish" in names

    def test_run_with_chrome_trace(self, workflow_file, tmp_path):
        trace = tmp_path / "run.json"
        assert main(
            ["run", workflow_file, "--trace", str(trace), "--trace-format", "chrome"]
        ) == 0
        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        tracks = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # one named thread per agent (diamond 2x2: split/s*/merge) + broker
        assert "broker" in tracks and any(track.startswith("s") for track in tracks)
        assert any(e["ph"] == "X" for e in events)

    def test_trace_summarize_text(self, workflow_file, tmp_path, capsys):
        trace = tmp_path / "run.trace.jsonl"
        assert main(["run", workflow_file, "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace summary:" in out and "reduction phase seconds:" in out

    def test_trace_summarize_json_and_convert(self, workflow_file, tmp_path, capsys):
        jsonl = tmp_path / "run.trace.jsonl"
        chrome = tmp_path / "run.json"
        assert main(["run", workflow_file, "--trace", str(jsonl)]) == 0
        assert main(["trace", "convert", str(jsonl), str(chrome), "--to", "chrome"]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(jsonl), "--json"]) == 0
        summary_jsonl = json.loads(capsys.readouterr().out)
        assert main(["trace", "summarize", str(chrome), "--json"]) == 0
        summary_chrome = json.loads(capsys.readouterr().out)
        for phase, seconds in summary_jsonl["phases"].items():
            assert math.isclose(
                seconds, summary_chrome["phases"][phase], rel_tol=1e-6, abs_tol=1e-9
            )

    def test_trace_summarize_missing_file(self, capsys):
        assert main(["trace", "summarize", "nope.jsonl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_with_trace_records_cells(self, tmp_path, capsys):
        trace = tmp_path / "sweep.trace.jsonl"
        assert main(
            [
                "sweep", "--scenario", "forkjoin", "--param", "size=10,12",
                "--trace", str(trace),
            ]
        ) == 0
        cells = [r for r in read_trace(str(trace)) if r.name == "sweep.cell"]
        assert len(cells) == 2
        assert all(cell.track == "sweep" for cell in cells)
        assert {cell.attrs.get("size") for cell in cells} == {10, 12}

    def test_log_level_flag(self, workflow_file):
        assert main(["--log-level", "WARNING", "run", workflow_file]) == 0
