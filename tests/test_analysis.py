"""Tests for repro.analysis: the static analyzer behind ``ginflow lint``.

Each built-in check gets a deliberately-broken fixture that must produce the
expected finding (check id, severity, subject, fix hint), and the shipped
catalog — every registered scenario plus the built-in generic/local rule
sets — must lint clean at ``--fail-on error``.
"""

import json

import pytest

from repro.analysis import (
    AnalysisReport,
    Finding,
    Severity,
    analyze_all_scenarios,
    analyze_document,
    analyze_encoding,
    analyze_rules,
    analyze_scenario,
    analyze_workflow,
    available_checks,
    register_check,
    registry,
)
from repro.cli import main
from repro.hocl import (
    Multiset,
    Omega,
    PatchAdd,
    Ref,
    RewriteDelta,
    Rule,
    SolutionPattern,
    SolutionTemplate,
    Splice,
    Symbol,
    TuplePattern,
    TupleTemplate,
    Var,
    replace,
    replace_one,
    with_inject,
)
from repro.hoclflow.translator import encode_workflow
from repro.scenarios import available_scenarios, register_scenario
from repro.scenarios.registry import registry as scenario_registry
from repro.workflow import Task, Workflow, adaptive_diamond_workflow, diamond_workflow
from repro.workflow.json_format import workflow_to_json


def findings_for(report, check):
    return report.by_check(check)


# --------------------------------------------------------------- rule checks
class TestRuleChecks:
    def test_unbound_product_variable(self):
        rule = replace("bad_product", [Var("x")], [Ref("y")])
        report = analyze_rules([rule], solution=Multiset([1]))
        (finding,) = findings_for(report, "rule-unbound-product")
        assert finding.severity is Severity.ERROR
        assert finding.subject == "bad_product"
        assert "'y'" in finding.message
        assert "bind" in finding.fix_hint

    def test_unbound_condition_variable(self):
        rule = replace(
            "bad_condition",
            [Var("x")],
            [Ref("x")],
            condition=lambda b: b.value("z") > 0,
        )
        report = analyze_rules([rule], solution=Multiset([1]))
        (finding,) = findings_for(report, "rule-unbound-condition")
        assert finding.severity is Severity.WARNING
        assert finding.subject == "bad_condition"
        assert "'z'" in finding.message

    def test_dead_index_key(self):
        rule = replace("waits_forever", [Symbol("GHOST")], [])
        report = analyze_rules([rule], solution=Multiset([1, 2]))
        (finding,) = findings_for(report, "rule-dead-index-key")
        assert finding.severity is Severity.ERROR
        assert finding.subject == "waits_forever"
        assert "GHOST" in finding.message

    def test_index_key_live_via_initial_solution(self):
        rule = replace("fires", [Symbol("GO")], [])
        report = analyze_rules([rule], solution=Multiset([Symbol("GO")]))
        assert not findings_for(report, "rule-dead-index-key")

    def test_index_key_live_via_producing_rule(self):
        producer = replace_one("producer", [Var("x")], [Symbol("GO")])
        consumer = replace("consumer", [Symbol("GO")], [])
        report = analyze_rules([producer, consumer], solution=Multiset([1]))
        assert not findings_for(report, "rule-dead-index-key")

    def test_index_key_live_via_injection(self):
        rule = replace("adaptation", [Symbol("ADAPT")], [])
        clean = analyze_rules(
            [rule], solution=Multiset([1]), injected_keys={("symbol", "ADAPT")}
        )
        assert not findings_for(clean, "rule-dead-index-key")
        dirty = analyze_rules([rule], solution=Multiset([1]))
        assert findings_for(dirty, "rule-dead-index-key")

    def test_duplicate_rule_name(self):
        first = replace("same", [Var("x")], [Ref("x")])
        second = replace("same", [Symbol("GO")], [])
        report = analyze_rules(
            [first, second], solution=Multiset([1, Symbol("GO")])
        )
        (finding,) = findings_for(report, "rule-duplicate-name")
        assert finding.severity is Severity.ERROR
        assert finding.subject == "same"
        assert "rename" in finding.fix_hint

    def test_shadowed_rule(self):
        greedy = replace("greedy", [Var("x")], [Ref("x")])
        starved = replace("starved", [Var("x")], [Ref("x")])
        report = analyze_rules([greedy, starved], solution=Multiset([1]))
        (finding,) = findings_for(report, "rule-shadowed")
        assert finding.severity is Severity.WARNING
        assert finding.subject == "starved"
        assert "'greedy'" in finding.message
        assert "priority" in finding.fix_hint

    def test_no_shadow_across_priorities_or_conditions(self):
        high = replace("high", [Var("x")], [Ref("x")], priority=1)
        guarded = replace("guarded", [Var("x")], [Ref("x")], condition=lambda b: True)
        low = replace("low", [Var("x")], [Ref("x")])
        report = analyze_rules([high, guarded, low], solution=Multiset([1]))
        assert not findings_for(report, "rule-shadowed")

    def test_ref_of_omega_bound_variable(self):
        pattern = TuplePattern(Symbol("T"), rest=Omega("w"))
        rule = replace("bad_arity", [pattern], [Ref("w")])
        report = analyze_rules([rule], solution=Multiset([1]))
        findings = [
            f for f in findings_for(report, "rule-template-arity") if f.severity is Severity.ERROR
        ]
        (finding,) = findings
        assert finding.subject == "bad_arity"
        assert "Splice" in finding.fix_hint

    def test_splice_of_scalar_bound_variable(self):
        rule = replace("odd_splice", [Var("x")], [Splice("x")])
        report = analyze_rules([rule], solution=Multiset([1]))
        findings = findings_for(report, "rule-template-arity")
        (finding,) = findings
        assert finding.severity is Severity.WARNING
        assert "Ref" in finding.fix_hint

    def test_rebuild_unchanged_fields(self):
        rule = replace_one(
            "rebuilds_src",
            [
                TuplePattern(Symbol("SRC"), SolutionPattern(rest=Omega("w"))),
                Symbol("GO"),
            ],
            [TupleTemplate(Symbol("SRC"), SolutionTemplate(Splice("w")))],
        )
        report = analyze_rules(
            [rule], solution=Multiset([Symbol("GO")]), injected_wildcard=True
        )
        (finding,) = findings_for(report, "rule-rebuild-unchanged-fields")
        assert finding.severity is Severity.INFO
        assert finding.subject == "rebuilds_src"
        assert "'SRC'" in finding.message
        assert "RewriteDelta" in finding.message
        assert "delta=" in finding.fix_hint

    def test_rebuild_check_exempts_delta_and_fresh_heads(self):
        patterns = [
            TuplePattern(Symbol("SRC"), SolutionPattern(rest=Omega("w"))),
            Symbol("GO"),
        ]
        converted = replace_one(
            "already_delta",
            patterns,
            [TupleTemplate(Symbol("SRC"), SolutionTemplate(Splice("w")))],
            delta=RewriteDelta(
                consume=(1,), ops=(PatchAdd(at=0, templates=(Symbol("DONE"),)),)
            ),
        )
        fresh_head = replace_one(
            "fresh_head",
            patterns,
            [TupleTemplate(Symbol("OUT"), SolutionTemplate(Splice("w")))],
        )
        report = analyze_rules(
            [converted, fresh_head],
            solution=Multiset([Symbol("GO")]),
            injected_wildcard=True,
        )
        assert not findings_for(report, "rule-rebuild-unchanged-fields")


# ----------------------------------------------------------- workflow checks
class TestWorkflowChecks:
    def test_cycle(self):
        report = analyze_document(
            {
                "name": "cyclic",
                "tasks": [
                    {"name": "a", "service": "s", "depends_on": ["c"]},
                    {"name": "b", "service": "s", "depends_on": ["a"]},
                    {"name": "c", "service": "s", "depends_on": ["b"]},
                ],
            }
        )
        (finding,) = findings_for(report, "workflow-cycle")
        assert finding.severity is Severity.ERROR
        assert "->" in finding.message
        # a cyclic workflow also has no reachable exit task
        unreachable = findings_for(report, "workflow-unreachable")
        assert unreachable and all(f.severity is Severity.ERROR for f in unreachable)

    def test_orphan_task(self):
        report = analyze_document(
            {
                "name": "orphaned",
                "tasks": [
                    {"name": "a", "service": "s"},
                    {"name": "b", "service": "s", "depends_on": ["a"]},
                    {"name": "lone", "service": "s"},
                ],
            }
        )
        (finding,) = findings_for(report, "workflow-orphan")
        assert finding.severity is Severity.WARNING
        assert finding.subject == "lone"

    def test_duplicate_task_name(self):
        report = analyze_document(
            {
                "name": "dup",
                "tasks": [
                    {"name": "a", "service": "s"},
                    {"name": "a", "service": "other"},
                    {"name": "b", "service": "s", "depends_on": ["a"]},
                ],
            }
        )
        (finding,) = findings_for(report, "workflow-duplicate-task")
        assert finding.severity is Severity.ERROR
        assert finding.subject == "a"
        assert "rename" in finding.fix_hint

    def test_json_safety(self):
        workflow = Workflow(name="unsafe")
        workflow.add_task(Task(name="a", service="s", metadata={"bad": object()}))
        report = analyze_workflow(workflow)
        findings = findings_for(report, "workflow-json-safety")
        assert findings and findings[0].severity is Severity.ERROR

    def test_document_errors_are_findings_not_exceptions(self):
        report = analyze_document(
            {
                "name": "broken-doc",
                "tasks": [
                    {"name": "a", "service": "s"},
                    {"name": "", "service": "s"},
                    {"name": "b", "service": "s", "depends_on": ["nowhere"]},
                ],
            }
        )
        documents = findings_for(report, "workflow-document")
        assert len(documents) == 2
        assert all(f.severity is Severity.ERROR for f in documents)

    def test_clean_workflow_has_no_findings(self):
        report = analyze_workflow(diamond_workflow(3, 2))
        assert report.ok(Severity.WARNING)
        assert len(report) == 0


# ----------------------------------------------------------- scenario checks
@pytest.fixture()
def scratch_scenario():
    """Register throwaway scenarios and tear them down afterwards."""
    names = []

    def _register(name, factory, **kwargs):
        names.append(name)
        register_scenario(name, factory, **kwargs)

    yield _register
    for name in names:
        scenario_registry.unregister(name)


class TestScenarioChecks:
    def test_cost_profile_drift(self, scratch_scenario):
        def factory(size=4, seed=0):
            workflow = Workflow(name="drifted")
            previous = None
            for index in range(max(2, size)):
                name = f"t{index}"
                workflow.add_task(
                    Task(name=name, service="s", metadata={"stage": "compute"})
                )
                if previous is not None:
                    workflow.add_dependency(previous, name)
                previous = name
            return workflow

        scratch_scenario(
            "drifted-profile", factory, cost_profile={"mystery": (1.0, 2.0)}
        )
        report = analyze_scenario("drifted-profile")
        findings = findings_for(report, "scenario-cost-profile")
        subjects = {f.subject for f in findings}
        assert "mystery" in subjects  # declared but never stamped
        assert "compute" in subjects  # stamped but never declared
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_failure_profile_must_reach_every_task(self, scratch_scenario):
        def factory(size=2, seed=0):
            workflow = Workflow(name="unprofiled")
            workflow.add_task(Task(name="a", service="s", metadata={"idempotent": True}))
            workflow.add_task(Task(name="b", service="s"))
            workflow.add_dependency("a", "b")
            return workflow

        scratch_scenario(
            "missing-profile", factory, failure_profile={"idempotent": True}
        )
        report = analyze_scenario("missing-profile")
        (finding,) = findings_for(report, "scenario-failure-profile")
        assert finding.severity is Severity.ERROR
        assert finding.subject == "idempotent"
        assert "'b'" in finding.message

    def test_nondeterministic_factory(self, scratch_scenario):
        ticks = iter(range(1000))

        def factory(size=2, seed=0):
            workflow = Workflow(name="jittery")
            workflow.add_task(
                Task(name="a", service="s", duration=0.1 + next(ticks))
            )
            workflow.add_task(Task(name="b", service="s"))
            workflow.add_dependency("a", "b")
            return workflow

        scratch_scenario("jittery", factory)
        report = analyze_scenario("jittery")
        (finding,) = findings_for(report, "scenario-determinism")
        assert finding.severity is Severity.ERROR
        assert "seed" in finding.fix_hint


# ------------------------------------------------- shipped catalog is clean
class TestCatalogClean:
    def test_every_registered_scenario_lints_clean(self):
        for name in available_scenarios():
            report = analyze_scenario(name)
            errors = [f for f in report if f.severity is Severity.ERROR]
            assert not errors, f"scenario {name!r}: {[f.message for f in errors]}"

    def test_all_scenarios_report_is_clean(self):
        report = analyze_all_scenarios()
        assert report.ok(Severity.ERROR)
        assert len(report) == 0, [f.message for f in report]

    def test_builtin_encodings_lint_clean(self):
        for workflow in (diamond_workflow(3, 2), adaptive_diamond_workflow(2, 2)):
            report = analyze_encoding(encode_workflow(workflow))
            errors = [f for f in report if f.severity is Severity.ERROR]
            assert not errors, [f.message for f in errors]

    def test_builtin_local_rules_lint_clean(self):
        from repro.agents.local_rules import build_local_rules

        encoding = encode_workflow(adaptive_diamond_workflow(2, 2))
        for name, task in encoding.tasks.items():
            rules = build_local_rules(task, lambda action: None)
            report = analyze_rules(
                rules,
                solution=task.initial_solution(include_rules=False),
                label=f"local rules of {name!r}",
                injected_keys={("symbol", "ADAPT")},
            )
            errors = [f for f in report if f.severity is Severity.ERROR]
            assert not errors, [f.message for f in errors]


# --------------------------------------------------------------- check registry
class TestCheckRegistry:
    def test_builtin_catalog_has_all_checks(self):
        ids = {check.id for check in available_checks()}
        assert {
            "rule-unbound-product",
            "rule-unbound-condition",
            "rule-dead-index-key",
            "rule-duplicate-name",
            "rule-shadowed",
            "rule-template-arity",
            "workflow-cycle",
            "workflow-orphan",
            "workflow-unreachable",
            "workflow-duplicate-task",
            "workflow-json-safety",
            "scenario-cost-profile",
            "scenario-failure-profile",
            "scenario-determinism",
        } <= ids

    def test_custom_check_runs_in_drivers(self):
        @register_check(
            "custom-max-patterns",
            kind="rule",
            severity=Severity.INFO,
            description="flag rules with huge left-hand sides",
        )
        def check_pattern_count(scope):
            for rule in scope.rules:
                if len(rule.patterns) > 1:
                    yield Finding(
                        check="custom-max-patterns",
                        severity=Severity.INFO,
                        subject=rule.name,
                        message="wide rule",
                        location=scope.label,
                    )

        try:
            wide = replace("wide", [Var("x"), Var("y")], [Ref("x"), Ref("y")])
            report = analyze_rules([wide], solution=Multiset([1, 2]))
            (finding,) = findings_for(report, "custom-max-patterns")
            assert finding.severity is Severity.INFO
            assert report.ok(Severity.WARNING)  # info does not fail the gate
        finally:
            registry.unregister("custom-max-patterns")

    def test_duplicate_check_id_rejected(self):
        with pytest.raises(Exception):
            register_check("rule-unbound-product", kind="rule")(lambda scope: [])


# ---------------------------------------------------------------- report API
class TestReportAPI:
    def _report(self):
        report = AnalysisReport()
        report.add(
            Finding(
                check="demo",
                severity=Severity.WARNING,
                subject="x",
                message="m",
                fix_hint="h",
                location="here",
            )
        )
        return report

    def test_fail_on_threshold(self):
        report = self._report()
        assert report.ok(Severity.ERROR)
        assert not report.ok(Severity.WARNING)
        assert report.worst_severity() is Severity.WARNING

    def test_json_payload_round_trips(self):
        payload = json.loads(self._report().to_json(fail_on=Severity.WARNING))
        assert payload["ok"] is False
        assert payload["counts"]["warning"] == 1
        assert payload["findings"][0]["check"] == "demo"

    def test_text_format_groups_by_location(self):
        text = self._report().format_text()
        assert "here" in text and "[warning]" in text and "fix: h" in text


# ------------------------------------------------------------------ rule identity
class TestRuleIdentity:
    def test_equal_rules_hash_equal_across_constructors(self):
        variants = [
            replace("r", [Var("x")], [Ref("x")]),
            replace_one("r", [Var("y")], [Ref("y")]),
            with_inject("r", [Var("z")], [Symbol("GO")]),
        ]
        for left in variants:
            for right in variants:
                assert left == right
                assert hash(left) == hash(right)

    def test_different_names_not_equal(self):
        assert replace("a", [Var("x")], []) != replace("b", [Var("x")], [])

    def test_non_rule_comparison_is_not_implemented(self):
        rule = replace("a", [Var("x")], [])
        assert rule.__eq__("a") is NotImplemented
        assert rule != "a"
        assert "a" != rule


# ------------------------------------------------------------------------ CLI
class TestLintCLI:
    @pytest.fixture()
    def workflow_file(self, tmp_path):
        path = tmp_path / "wf.json"
        workflow_to_json(diamond_workflow(2, 2, duration=0.05), path)
        return str(path)

    @pytest.fixture()
    def broken_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(
            json.dumps(
                {
                    "name": "broken",
                    "tasks": [
                        {"name": "a", "service": "s", "depends_on": ["b"]},
                        {"name": "b", "service": "s", "depends_on": ["a"]},
                    ],
                }
            )
        )
        return str(path)

    def test_lint_clean_workflow(self, workflow_file, capsys):
        assert main(["lint", workflow_file]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_broken_workflow(self, broken_file, capsys):
        assert main(["lint", broken_file]) == 1
        output = capsys.readouterr().out
        assert "workflow-cycle" in output and "[error]" in output

    def test_lint_json_output(self, broken_file, capsys):
        assert main(["lint", broken_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(f["check"] == "workflow-cycle" for f in payload["findings"])

    def test_lint_json_out_artifact(self, broken_file, tmp_path, capsys):
        artifact = tmp_path / "findings.json"
        assert main(["lint", broken_file, "--json-out", str(artifact)]) == 1
        payload = json.loads(artifact.read_text())
        assert payload["findings"]

    def test_lint_scenario(self, capsys):
        assert main(["lint", "--scenario", "epigenomics:size=10"]) == 0

    def test_lint_all_scenarios(self, capsys):
        assert main(["lint", "--all-scenarios", "--fail-on", "error"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_requires_exactly_one_source(self, workflow_file, capsys):
        assert main(["lint"]) == 2
        assert main(["lint", workflow_file, "--all-scenarios"]) == 2

    def test_validate_still_delegates(self, workflow_file, broken_file, capsys):
        assert main(["validate", workflow_file]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(["validate", broken_file]) == 2
