"""Unit tests for the HOCLflow layer: fields, generic rules, adaptation, translator."""

from repro.hocl import (
    IntAtom,
    Multiset,
    ReductionEngine,
    Subsolution,
    Symbol,
    TupleAtom,
    default_registry,
)
from repro.hoclflow import (
    build_parameters,
    build_plan,
    dst_field,
    encode_workflow,
    get_dst,
    get_in_atoms,
    get_par_values,
    get_res_atoms,
    get_service,
    get_src,
    has_error,
    has_result,
    in_field,
    is_tagged_input,
    keywords as kw,
    make_add_dst,
    make_gw_call,
    make_gw_pass,
    make_gw_setup,
    make_mv_src,
    make_trigger_adapt,
    register_workflow_externals,
    res_field,
    src_field,
    srv_field,
    tagged_input,
    tagged_input_source,
    tagged_input_value,
    task_solution,
    task_tuple,
)
from repro.workflow import AdaptationSpec, Task, Workflow, adaptive_diamond_workflow, diamond_workflow


class TestFields:
    def test_src_field_structure(self):
        field = src_field(["T1", "T2"])
        assert field.head_symbol() == kw.SRC
        assert Symbol("T1") in field.elements[1].solution

    def test_task_solution_has_all_fields(self):
        solution = task_solution(["T1"], ["T3"], "svc", inputs=["x"])
        assert get_src(solution) == ["T1"]
        assert get_dst(solution) == ["T3"]
        assert get_service(solution) == "svc"
        assert len(get_in_atoms(solution)) == 1
        assert get_res_atoms(solution) == []

    def test_task_tuple_wraps_solution(self):
        atom = task_tuple("T1", [], [], "svc")
        assert atom.head_symbol() == "T1"
        assert isinstance(atom.elements[1], Subsolution)

    def test_tagged_input_roundtrip(self):
        atom = tagged_input("T1", 42)
        assert is_tagged_input(atom)
        assert tagged_input_source(atom) == "T1"
        assert tagged_input_value(atom) == IntAtom(42)

    def test_reserved_keyword_tuple_is_not_tagged_input(self):
        assert not is_tagged_input(src_field([]))

    def test_build_parameters_orders_initial_then_tagged(self):
        atoms = [tagged_input("T2", "b"), IntAtom(1), tagged_input("T1", "a")]
        assert build_parameters(atoms) == [1, "a", "b"]

    def test_has_error_and_result(self):
        solution = task_solution([], [], "svc")
        assert not has_result(solution) and not has_error(solution)
        solution.replace_tuple(kw.RES, res_field([kw.ERROR_SYM]))
        assert has_error(solution) and not has_result(solution)
        solution.replace_tuple(kw.RES, res_field(["value"]))
        assert has_result(solution)

    def test_get_par_values_absent(self):
        assert get_par_values(task_solution([], [], "svc")) is None

    def test_srv_field_service_name(self):
        solution = Multiset([srv_field("montage")])
        assert get_service(solution) == "montage"


class TestGenericRules:
    def _externals(self, results=None):
        registry = default_registry()
        results = results or {}

        def invoke(task, service, params):
            results.setdefault("calls", []).append((task, service, tuple(params)))
            if results.get("fail"):
                raise RuntimeError("boom")
            return f"{task}-out"

        register_workflow_externals(registry, invoke)
        return registry, results

    def test_gw_setup_builds_parameters_when_src_empty(self):
        solution = task_solution([], [], "svc", inputs=["x", "y"])
        solution.add(make_gw_setup())
        registry, _ = self._externals()
        ReductionEngine(externals=registry).reduce(solution)
        assert get_par_values(solution) == ["x", "y"]
        assert solution.find_tuple(kw.IN) is None  # IN consumed

    def test_gw_setup_waits_for_sources(self):
        solution = task_solution(["T1"], [], "svc", inputs=["x"])
        solution.add(make_gw_setup())
        registry, _ = self._externals()
        ReductionEngine(externals=registry).reduce(solution)
        assert get_par_values(solution) is None

    def test_gw_call_invokes_service_and_stores_result(self):
        solution = task_solution([], [], "svc", inputs=["x"])
        solution.add_all([make_gw_setup(), make_gw_call("T7")])
        registry, calls = self._externals()
        ReductionEngine(externals=registry).reduce(solution)
        assert has_result(solution)
        assert calls["calls"] == [("T7", "svc", ("x",))]

    def test_gw_call_failure_yields_error_marker(self):
        solution = task_solution([], [], "svc", inputs=["x"])
        solution.add_all([make_gw_setup(), make_gw_call("T7")])
        registry, _ = self._externals({"fail": True})
        ReductionEngine(externals=registry).reduce(solution)
        assert has_error(solution)

    def test_gw_pass_moves_result_and_dependencies(self):
        source = task_tuple("T1", [], ["T2"], "svc")
        destination = task_tuple("T2", ["T1"], [], "svc")
        source.elements[1].solution.replace_tuple(kw.RES, res_field(["r1"]))
        solution = Multiset([source, destination, make_gw_pass()])
        registry, _ = self._externals()
        ReductionEngine(externals=registry).reduce(solution)
        dest_solution = solution.find_tuple("T2").elements[1].solution
        assert get_src(dest_solution) == []
        tagged = [a for a in get_in_atoms(dest_solution) if is_tagged_input(a)]
        assert tagged and tagged_input_source(tagged[0]) == "T1"
        source_solution = solution.find_tuple("T1").elements[1].solution
        assert get_dst(source_solution) == []

    def test_gw_pass_does_not_move_error(self):
        source = task_tuple("T1", [], ["T2"], "svc")
        destination = task_tuple("T2", ["T1"], [], "svc")
        source.elements[1].solution.replace_tuple(kw.RES, res_field([kw.ERROR_SYM]))
        solution = Multiset([source, destination, make_gw_pass()])
        ReductionEngine(externals=default_registry()).reduce(solution)
        dest_solution = solution.find_tuple("T2").elements[1].solution
        assert get_src(dest_solution) == ["T1"]

    def test_gw_pass_waits_for_result(self):
        source = task_tuple("T1", [], ["T2"], "svc")
        destination = task_tuple("T2", ["T1"], [], "svc")
        solution = Multiset([source, destination, make_gw_pass()])
        ReductionEngine(externals=default_registry()).reduce(solution)
        assert get_src(solution.find_tuple("T2").elements[1].solution) == ["T1"]


def simple_adaptive_workflow():
    """The Fig. 5/6 scenario: T2 may fail, replaced by T2p."""
    workflow = Workflow("fig5")
    workflow.add_task(Task("T1", "s1", inputs=["input"]))
    workflow.add_task(Task("T2", "s2", metadata={"force_error": True}))
    workflow.add_task(Task("T3", "s3"))
    workflow.add_task(Task("T4", "s4"))
    workflow.add_dependency("T1", "T2")
    workflow.add_dependency("T1", "T3")
    workflow.add_dependency("T2", "T4")
    workflow.add_dependency("T3", "T4")
    replacement = Workflow("alt")
    replacement.add_task(Task("T2p", "s2alt"))
    spec = AdaptationSpec(
        name="replace-T2",
        replaced=["T2"],
        replacement=replacement,
        entry_sources={"T2p": ["T1"]},
    )
    workflow.add_adaptation(spec)
    return workflow, spec


class TestAdaptationPlan:
    def test_plan_resolution(self):
        workflow, spec = simple_adaptive_workflow()
        plan = build_plan(workflow, spec)
        assert plan.sources == ["T1"]
        assert plan.destination == "T4"
        assert plan.entry_tasks == ["T2p"]
        assert plan.exit_tasks == ["T2p"]
        assert plan.added_destinations == {"T1": ["T2p"]}

    def test_affected_tasks_and_markers(self):
        workflow, spec = simple_adaptive_workflow()
        plan = build_plan(workflow, spec)
        assert set(plan.affected_tasks()) == {"T1", "T4", "T2p"}
        assert plan.adapt_marker_counts() == {"T1": 1, "T4": 1, "T2p": 1}

    def test_rule_names(self):
        workflow, spec = simple_adaptive_workflow()
        plan = build_plan(workflow, spec)
        assert make_trigger_adapt(plan, "T2").name.startswith("trigger_adapt:")
        assert make_add_dst(plan, "T1").name.startswith("add_dst:")
        assert make_mv_src(plan).name.startswith("mv_src:")


class TestTranslator:
    def test_encoding_covers_all_tasks(self):
        workflow, _spec = simple_adaptive_workflow()
        encoding = encode_workflow(workflow)
        assert set(encoding.task_names()) == {"T1", "T2", "T3", "T4", "T2p"}
        assert encoding.replacement_tasks() == ["T2p"]
        assert encoding.exit_tasks() == ["T4"]

    def test_replacement_entry_has_trigger_placeholder(self):
        workflow, _spec = simple_adaptive_workflow()
        encoding = encode_workflow(workflow)
        entry = encoding.tasks["T2p"]
        assert entry.has_trigger_placeholder
        solution = entry.initial_solution()
        assert kw.TRIGGER in get_src(solution)

    def test_local_rules_assignment(self):
        workflow, _spec = simple_adaptive_workflow()
        encoding = encode_workflow(workflow)
        t1_rules = {rule.name.split(":")[0] for rule in encoding.tasks["T1"].local_rules}
        assert "add_dst" in t1_rules
        t4_rules = {rule.name.split(":")[0] for rule in encoding.tasks["T4"].local_rules}
        assert "mv_src" in t4_rules
        t2p_rules = {rule.name.split(":")[0] for rule in encoding.tasks["T2p"].local_rules}
        assert "activate" in t2p_rules

    def test_trigger_plan_attached_to_trigger_task(self):
        workflow, _spec = simple_adaptive_workflow()
        encoding = encode_workflow(workflow)
        assert len(encoding.tasks["T2"].trigger_plans) == 1
        assert not encoding.tasks["T3"].trigger_plans

    def test_to_multiset_contains_global_rules_and_task_tuples(self):
        workflow, _spec = simple_adaptive_workflow()
        encoding = encode_workflow(workflow)
        solution = encoding.to_multiset()
        rule_names = {rule.name.split(":")[0] for rule in solution.rules()}
        assert "gw_pass" in rule_names and "trigger_adapt" in rule_names
        task_tuples = [
            atom for atom in solution.atoms()
            if isinstance(atom, TupleAtom) and isinstance(atom.elements[0], Symbol)
            and not isinstance(atom, type(None)) and atom.head_symbol() not in kw.RESERVED_KEYWORDS
            and isinstance(atom.elements[-1], Subsolution)
        ]
        assert len(task_tuples) == 5

    def test_encoding_of_plain_diamond_has_no_adaptation_rules(self):
        encoding = encode_workflow(diamond_workflow(2, 2))
        assert len(encoding.plans) == 0
        assert len(encoding.global_rules) == 1  # just gw_pass

    def test_adaptive_diamond_encoding_counts(self):
        workflow = adaptive_diamond_workflow(3, 2)
        encoding = encode_workflow(workflow)
        # 3*2 body + split + merge + 3*2 replacement
        assert len(encoding.task_names()) == 14
        assert len(encoding.plans) == 1
