"""End-to-end failure propagation through the event layer into sweeps.

A fault injected by :class:`repro.services.FailureModel` fails the
invocation *event*; a process joining a batch of invocations with
``AllOf`` must observe that failure, and the failure must surface in the
:class:`~repro.experiments.report.SweepReport` rows — before the simkernel
fixes, ``AllOf`` recorded the exception object as a plain value and the
join still succeeded, so fault-injection sweeps silently reported success.
"""

from __future__ import annotations

from repro.experiments import Experiment
from repro.runtime import GinFlowConfig
from repro.simkernel import RandomStreams, Simulator


def _stage_runner(workflow, config, cell):
    """Simulate one parallel stage of invocations joined by ``AllOf``.

    Every task's invocation is an event; the cell's failure model decides
    (seeded, through the event layer — never by peeking at agent state)
    whether the invocation crashes, in which case its event *fails*.  The
    watcher process only learns about faults through the join.
    """
    sim = Simulator()
    randomness = RandomStreams(config.seed)
    model = config.failures
    task_count = int(cell.get("tasks", 8))
    durations = [30.0 + 10.0 * index for index in range(task_count)]

    events = []
    injected = 0
    for index, duration in enumerate(durations):
        event = sim.event()
        crash_after = model.crash_time(duration, randomness, label=f"crash:{index}")
        if crash_after is not None:
            injected += 1
            sim.call_in(
                crash_after,
                lambda e=event, i=index: e.fail(RuntimeError(f"task-{i} crashed")),
            )
        else:
            sim.call_in(duration, lambda e=event, i=index: e.succeed(f"task-{i} done"))
        events.append(event)

    outcome: dict[str, object] = {}

    def watcher():
        try:
            values = yield sim.all_of(events)
        except RuntimeError as exc:
            outcome["error"] = str(exc)
            return "failed"
        outcome["values"] = values
        return "completed"

    sim.process(watcher())
    sim.run()
    return {
        "succeeded": "values" in outcome,
        "surfaced_error": outcome.get("error"),
        "failures": injected,
    }


class TestFailureSurfacesInSweeps:
    def _sweep(self):
        experiment = Experiment(
            name="failure-propagation",
            grid={"failure_probability": [0.0, 0.9]},
            config=GinFlowConfig(seed=7, broker="kafka"),
            repeats=3,
            runner=_stage_runner,
        )
        return experiment.run()

    def test_faults_fail_the_join_and_reach_the_report(self):
        report = self._sweep()
        rows = report.rows
        assert len(rows) == 6
        clean = [row for row in rows if row["failure_probability"] == 0.0]
        faulty = [row for row in rows if row["failure_probability"] == 0.9]
        # no injected fault: the join succeeds and reports no failures
        assert all(row["succeeded"] and row["failures"] == 0 for row in clean)
        # p=0.9 over 8 exposed tasks: every seeded repeat injects faults
        assert all(row["failures"] > 0 for row in faulty)
        # and every injected fault surfaces: the AllOf join must fail —
        # never succeed with an exception object among its values
        for row in faulty:
            assert not row["succeeded"]
            assert row["surfaced_error"] and "crashed" in row["surfaced_error"]

    def test_failures_aggregate_per_cell(self):
        report = self._sweep()
        cells = report.cells(metrics=("failures",))
        by_p = {cell["failure_probability"]: cell for cell in cells}
        assert by_p[0.0]["failures_mean"] == 0.0
        assert by_p[0.9]["failures_mean"] > 0.0
