"""Tests for the Experiment/Sweep API and its CLI surface."""

import json

import pytest

from repro import (
    Experiment,
    GinFlow,
    GinFlowConfig,
    ParameterGrid,
    diamond_workflow,
    workflow_to_json,
)


def _tiny_diamond(horizontal=2, vertical=2):
    return diamond_workflow(horizontal, vertical, duration=0.1)


class TestParameterGrid:
    def test_product_order_first_key_slowest(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y"]})
        assert grid.cells() == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]
        assert len(grid) == 4
        assert grid.keys() == ("a", "b")

    def test_scalars_wrap_into_singletons(self):
        grid = ParameterGrid({"a": 1, "name": "solo"})
        assert grid.cells() == [{"a": 1, "name": "solo"}]

    def test_union(self):
        union = ParameterGrid({"a": [1]}) + ParameterGrid({"b": [2, 3]})
        assert union.cells() == [{"a": 1}, {"b": 2}, {"b": 3}]
        assert len(union) == 3
        assert union.keys() == ("a", "b")

    def test_empty_grid_yields_one_cell(self):
        assert ParameterGrid({}).cells() == [{}]

    def test_invalid_inputs(self):
        with pytest.raises(TypeError):
            ParameterGrid(42)
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})

    def test_copy_constructor(self):
        grid = ParameterGrid({"a": [1, 2]})
        assert ParameterGrid(grid).cells() == grid.cells()

    def test_arbitrary_iterables_enumerate(self):
        import numpy as np

        grid = ParameterGrid({"nodes": np.array([5, 10, 15]), "tag": (v for v in ("a", "b"))})
        assert len(grid) == 6
        assert [cell["nodes"] for cell in grid.cells()[:3]] == [5, 5, 10]

    def test_dict_values_stay_scalar(self):
        grid = ParameterGrid({"options": {"deep": True}})
        assert grid.cells() == [{"options": {"deep": True}}]


class TestSweep:
    def test_smoke_2x2_grid(self):
        grid = ParameterGrid({"nodes": [5, 10], "broker": ["activemq", "kafka"]})
        report = GinFlow().sweep(_tiny_diamond, grid, repeats=2, name="smoke")
        assert len(report) == 8
        assert report.succeeded
        assert report.grid_keys == ("nodes", "broker")
        cells = report.cells()
        assert len(cells) == 4
        assert all(cell["runs"] == 2 for cell in cells)
        assert all(cell["success_rate"] == 1.0 for cell in cells)
        # kafka costs more than activemq in every cell pair
        by_key = {(cell["nodes"], cell["broker"]): cell for cell in cells}
        assert by_key[(5, "kafka")]["makespan_mean"] > by_key[(5, "activemq")]["makespan_mean"]

    def test_repeats_derive_seeds(self):
        report = GinFlow(GinFlowConfig(seed=10)).sweep(
            _tiny_diamond, ParameterGrid({"nodes": [5]}), repeats=3
        )
        assert [row["seed"] for row in report.rows] == [10, 11, 12]
        assert [row["repeat"] for row in report.rows] == [0, 1, 2]

    def test_sweeping_seed_keeps_cell_identity(self):
        report = GinFlow().sweep(_tiny_diamond, ParameterGrid({"seed": [1, 100]}), repeats=2)
        # the swept seed stays the cell identity; derived seeds go to run_seed
        assert [row["seed"] for row in report.rows] == [1, 1, 100, 100]
        assert [row["run_seed"] for row in report.rows] == [1, 2, 100, 101]
        cells = report.cells()
        assert len(cells) == 2
        assert all(cell["runs"] == 2 for cell in cells)

    def test_workflow_factory_parameters(self):
        grid = ParameterGrid({"horizontal": [2, 3], "nodes": [5]})
        report = GinFlow().sweep(_tiny_diamond, grid)
        assert [row["horizontal"] for row in report.rows] == [2, 3]

    def test_fixed_workflow_rejects_workflow_parameters(self):
        workflow = _tiny_diamond()
        with pytest.raises(ValueError, match="neither"):
            GinFlow().sweep(workflow, ParameterGrid({"mystery": [1]}))

    def test_fixed_workflow_accepts_config_parameters(self):
        report = GinFlow().sweep(_tiny_diamond(), ParameterGrid({"nodes": [5, 10]}))
        assert len(report) == 2 and report.succeeded

    def test_failure_parameters_inherit_base_model(self):
        from repro import Experiment, FailureModel

        config = GinFlowConfig(broker="kafka", failures=FailureModel(probability=0.5, delay=10.0))
        experiment = Experiment(workflow=_tiny_diamond, grid={"failure_delay": [0.0, 15.0]}, config=config)
        cell_config, _, _ = experiment._split_cell({"failure_delay": 15.0})
        # the base model's probability survives when only the delay is swept
        assert cell_config.failures.probability == 0.5
        assert cell_config.failures.delay == 15.0

    def test_failure_parameters_build_failure_model(self):
        report = GinFlow().sweep(
            lambda: diamond_workflow(3, 2, duration=5.0),
            ParameterGrid({"failure_probability": [0.0, 0.5]}),
            broker="kafka",
            nodes=5,
            seed=3,
        )
        without, with_failures = report.rows
        assert without["failures"] == 0
        assert with_failures["failures"] > 0
        assert report.succeeded

    def test_thread_parallelism_matches_sequential(self):
        grid = ParameterGrid({"nodes": [5, 10], "broker": ["activemq", "kafka"]})
        sequential = GinFlow().sweep(_tiny_diamond, grid)
        parallel = GinFlow().sweep(_tiny_diamond, grid, workers=4, parallel="thread")
        assert [row["makespan"] for row in parallel.rows] == [row["makespan"] for row in sequential.rows]

    def test_process_parallelism_matches_sequential(self):
        # _tiny_diamond is module-level, hence picklable for process pools
        grid = ParameterGrid({"nodes": [5, 10]})
        sequential = GinFlow().sweep(_tiny_diamond, grid)
        parallel = GinFlow().sweep(_tiny_diamond, grid, workers=2, parallel="process")
        assert [row["makespan"] for row in parallel.rows] == [row["makespan"] for row in sequential.rows]

    def test_process_parallelism_rejects_unpicklable(self):
        with pytest.raises(ValueError, match="picklable"):
            GinFlow().sweep(
                lambda: _tiny_diamond(), ParameterGrid({"nodes": [5, 10]}),
                workers=2, parallel="process",
            )

    def test_invalid_parallel_kind(self):
        with pytest.raises(ValueError, match="parallel"):
            GinFlow().sweep(_tiny_diamond, ParameterGrid({"nodes": [5, 10]}), workers=2, parallel="fibers")

    def test_metrics_callback(self):
        def metrics(report, cell, workflow):
            return {"tasks": len(workflow)}

        report = GinFlow().sweep(_tiny_diamond, ParameterGrid({"nodes": [5]}), metrics=metrics)
        assert report.rows[0]["tasks"] == len(_tiny_diamond())

    def test_custom_runner_mapping_rows(self):
        def runner(workflow, config, cell):
            return {"payload": cell["x"] * 2}

        report = GinFlow().sweep(None, ParameterGrid({"x": [1, 2]}), runner=runner)
        assert [row["payload"] for row in report.rows] == [2, 4]

    def test_sweep_overrides_are_validated(self):
        with pytest.raises(ValueError):
            GinFlow().sweep(_tiny_diamond, ParameterGrid({"nodes": [5]}), broker="rabbitmq")

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            Experiment(workflow=_tiny_diamond, grid={"nodes": [5]}, repeats=0)


class TestSweepReport:
    @pytest.fixture()
    def report(self):
        grid = ParameterGrid({"nodes": [5, 10]})
        return GinFlow().sweep(_tiny_diamond, grid, repeats=2, name="export")

    def test_json_export(self, report, tmp_path):
        path = tmp_path / "sweep.json"
        text = report.to_json(path)
        payload = json.loads(text)
        assert payload["name"] == "export"
        assert len(payload["rows"]) == 4
        assert len(payload["cells"]) == 2
        assert json.loads(path.read_text()) == payload

    def test_csv_export(self, report, tmp_path):
        path = tmp_path / "sweep.csv"
        text = report.to_csv(path)
        lines = text.strip().splitlines()
        assert len(lines) == 5  # header + 4 runs
        assert "nodes" in lines[0] and "makespan" in lines[0]
        assert path.read_text() == text

    def test_format_table(self, report):
        table = report.format_table()
        assert "export" in table and "makespan_mean" in table

    def test_best_cell(self, report):
        best = report.best_cell("makespan_mean")
        assert best["nodes"] == 5  # fewer nodes deploy faster here
        assert report.best_cell("messages") == report.best_cell("messages_mean")

    def test_best_cell_unknown_metric(self, report):
        with pytest.raises(KeyError, match="velocity"):
            report.best_cell("velocity")

    def test_cells_omit_absent_metrics(self, report):
        cells = report.cells(metrics=("makespan", "not_measured"))
        assert all("makespan_mean" in cell for cell in cells)
        assert all("not_measured_mean" not in cell for cell in cells)

    def test_rows_and_cells_carry_timed_out(self, report):
        # every run row records whether it hit the wall-clock timeout, and
        # cells count them (ROADMAP "timeout propagation" item)
        assert all(row["timed_out"] is False for row in report.rows)
        assert all(cell["timed_out_runs"] == 0 for cell in report.cells())
        assert report.timed_out is False


class TestSweepCLI:
    @pytest.fixture()
    def workflow_file(self, tmp_path):
        path = tmp_path / "wf.json"
        workflow_to_json(diamond_workflow(2, 2, duration=0.05), path)
        return str(path)

    def test_sweep_command(self, workflow_file, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "out.csv"
        code = main([
            "sweep", workflow_file,
            "--param", "nodes=5,10",
            "--param", "broker=activemq,kafka",
            "--repeats", "1",
            "--csv", str(csv_path),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "cli-sweep" in output and "kafka" in output
        assert csv_path.exists()
        assert len(csv_path.read_text().strip().splitlines()) == 5

    def test_sweep_command_json(self, workflow_file, capsys):
        from repro.cli import main

        assert main(["sweep", workflow_file, "--param", "nodes=5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"][0]["succeeded"] is True

    def test_sweep_requires_params(self, workflow_file, capsys):
        from repro.cli import main

        assert main(["sweep", workflow_file]) == 2
        assert "param" in capsys.readouterr().err

    def test_sweep_rejects_trailing_comma(self, workflow_file, capsys):
        from repro.cli import main

        assert main(["sweep", workflow_file, "--param", "nodes=5,"]) == 2
        assert "invalid --param" in capsys.readouterr().err

    def test_sweep_rejects_duplicate_param(self, workflow_file, capsys):
        from repro.cli import main

        assert main(["sweep", workflow_file, "--param", "nodes=5", "--param", "nodes=10"]) == 2
        assert "duplicate --param" in capsys.readouterr().err

    def test_backends_command(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        for name in ("runtime", "simulated", "threaded", "centralized", "ssh", "mesos",
                     "activemq", "kafka", "grid5000", "uniform"):
            assert name in output

    def test_backends_command_json(self, capsys):
        from repro.cli import main

        assert main(["backends", "--kind", "broker", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in payload}
        assert {"activemq", "kafka"} <= names
        kafka = next(entry for entry in payload if entry["name"] == "kafka")
        assert kafka["capabilities"]["persistent"] is True

    def test_run_command_accepts_cluster_preset(self, workflow_file):
        from repro.cli import main

        assert main(["run", workflow_file, "--cluster", "uniform", "--nodes", "3"]) == 0
