"""Tests for the command line interface and the benchmark harnesses."""

import json
import sys
from pathlib import Path

import pytest

from repro.bench import (
    experiment_scale,
    format_fig12,
    format_fig13,
    format_fig14,
    format_fig15,
    format_fig16,
    format_table,
    mean,
    run_fig15,
    run_matching_cost_ablation,
    std,
)
from repro.cli import build_parser, main
from repro.workflow import adaptive_diamond_workflow, diamond_workflow, workflow_to_json


@pytest.fixture()
def workflow_file(tmp_path):
    path = tmp_path / "wf.json"
    workflow_to_json(diamond_workflow(2, 2, duration=0.05), path)
    return str(path)


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "wf.json", "--broker", "kafka"])
        assert args.command == "run" and args.broker == "kafka"

    def test_validate_command(self, workflow_file, capsys):
        assert main(["validate", workflow_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_run_command_simulated(self, workflow_file, capsys):
        assert main(["run", workflow_file, "--nodes", "5"]) == 0
        output = capsys.readouterr().out
        assert "succeeded" in output

    def test_run_command_json_output(self, workflow_file, capsys):
        assert main(["run", workflow_file, "--nodes", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["succeeded"] is True

    def test_run_centralized_mode(self, workflow_file):
        assert main(["run", workflow_file, "--mode", "centralized"]) == 0

    def test_run_adaptive_workflow(self, tmp_path, capsys):
        path = tmp_path / "adaptive.json"
        workflow_to_json(adaptive_diamond_workflow(2, 2, duration=0.05), path)
        assert main(["run", str(path), "--nodes", "5"]) == 0
        assert "adaptations" in capsys.readouterr().out

    def test_show_hocl_command(self, workflow_file, capsys):
        assert main(["show-hocl", workflow_file]) == 0
        output = capsys.readouterr().out
        assert "SRC" in output and "DST" in output

    def test_missing_file_returns_error(self, capsys):
        assert main(["run", "nope.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_failure_config_rejected(self, workflow_file):
        # failures need Kafka; the CLI surfaces the configuration error
        assert main(["run", workflow_file, "--failure-probability", "0.5"]) == 2


class TestBenchHelpers:
    def test_experiment_scale_default(self, monkeypatch):
        monkeypatch.delenv("GINFLOW_FULL", raising=False)
        assert experiment_scale() == "small"
        assert experiment_scale("paper") == "paper"

    def test_experiment_scale_env(self, monkeypatch):
        monkeypatch.setenv("GINFLOW_FULL", "1")
        assert experiment_scale() == "paper"

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}], title="t")
        assert "t" in text and "2.50" in text

    def test_format_table_empty(self):
        assert "(no data)" in format_table([])

    def test_mean_std(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0
        assert std([2, 2, 2]) == 0.0
        assert std([1]) == 0.0


class TestCollateTrendPlot:
    @staticmethod
    def _artifact(wall):
        return {
            "benchmark": "hocl-reduction",
            "schema_version": 4,
            "scenarios": {
                "montage-100-centralized": {
                    "reactions": 100,
                    "incremental": {"match_attempts": 10, "wall_seconds": wall},
                    "naive": {"match_attempts": 99, "wall_seconds": wall * 10},
                    "speedup": {"match_attempts": 9.9, "wall_clock": 10.0},
                    "modes": {
                        "serial": {
                            "match_attempts": 10,
                            "wall_seconds": wall,
                            "timings": {
                                "match": wall * 0.5, "rewrite": wall * 0.2,
                                "patch": wall * 0.2, "index": wall * 0.1,
                            },
                        }
                    },
                }
            },
        }

    def test_plot_renders_svg(self, tmp_path):
        bench_dir = str(Path(__file__).resolve().parent.parent / "benchmarks")
        sys.path.insert(0, bench_dir)
        try:
            import collate_trend
        finally:
            sys.path.remove(bench_dir)
        for sha, wall in (("aaaaaaa", 1.0), ("bbbbbbb", 1.2)):
            (tmp_path / f"BENCH_reduction-{sha}.json").write_text(
                json.dumps(self._artifact(wall))
            )
        svg = tmp_path / "trend.svg"
        assert collate_trend.main(
            [str(tmp_path), "--order", "name", "--plot", str(svg)]
        ) == 0
        body = svg.read_text()
        assert body.startswith("<svg")
        assert "reduction wall seconds per commit" in body
        assert "phase split: montage-100-centralized [serial]" in body
        # one wall polyline + four phase polylines
        assert body.count("<polyline") == 5


class TestHarnesses:
    def test_fig15_harness(self):
        data = run_fig15()
        assert data["task_count"] == 118
        assert "Fig. 15" in format_fig15(data)

    def test_matching_cost_ablation_rows(self):
        rows = run_matching_cost_ablation(sizes=(5, 10))
        assert [row["solution_size"] for row in rows] == [5, 10]
        assert rows[0]["reactions"] == 4

    def test_formatters_accept_rows(self):
        rows = [
            {"connectivity": "simple", "horizontal": 1, "vertical": 1, "services": 3,
             "coordination_time": 1.0, "messages": 3, "succeeded": True}
        ]
        assert "Fig. 12" in format_fig12(rows)
        fig13_rows = [{"scenario": "s", "configuration": "1x1", "size": 1, "baseline_time": 1.0,
                       "adaptive_time": 2.0, "ratio": 2.0, "adaptations_triggered": 1, "succeeded": True}]
        assert "Fig. 13" in format_fig13(fig13_rows)
        fig14_rows = [{"executor": "ssh", "broker": "activemq", "nodes": 5, "deployment_time": 1.0,
                       "execution_time": 2.0, "total_time": 3.0, "repetitions": 1}]
        assert "Fig. 14" in format_fig14(fig14_rows)
        fig16_rows = [{"T": 0.0, "p": 0.2, "execution_time": 10.0, "execution_time_std": 1.0,
                       "failures": 2, "recoveries": 2, "repetitions": 1}]
        assert "Fig. 16" in format_fig16(fig16_rows, {"mean": 9.0, "std": 0.5})
