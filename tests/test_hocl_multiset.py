"""Unit tests for the Multiset container."""

import pytest

from repro.hocl import IntAtom, Multiset, Rule, Subsolution, Symbol, TupleAtom, Var


def make_rule(name="r"):
    return Rule(name, [Var("x", kind="int")], [])


class TestBasicOperations:
    def test_empty(self):
        assert len(Multiset()) == 0

    def test_init_coerces(self):
        ms = Multiset([1, "a"])
        assert IntAtom(1) in ms

    def test_add_returns_atom(self):
        ms = Multiset()
        atom = ms.add(3)
        assert atom == IntAtom(3)

    def test_duplicates_allowed(self):
        ms = Multiset([1, 1, 1])
        assert ms.count(1) == 3

    def test_remove_one_occurrence(self):
        ms = Multiset([1, 1])
        ms.remove(1)
        assert ms.count(1) == 1

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            Multiset().remove(1)

    def test_discard_missing_returns_false(self):
        assert Multiset().discard(1) is False

    def test_discard_present_returns_true(self):
        assert Multiset([1]).discard(1) is True

    def test_remove_identical_uses_identity(self):
        a1, a2 = IntAtom(1), IntAtom(1)
        ms = Multiset([a1, a2])
        ms.remove_identical(a2)
        assert len(ms) == 1
        assert ms.atoms()[0] is a1

    def test_remove_identical_missing_raises(self):
        with pytest.raises(KeyError):
            Multiset([IntAtom(1)]).remove_identical(IntAtom(1))

    def test_clear(self):
        ms = Multiset([1, 2, 3])
        ms.clear()
        assert len(ms) == 0

    def test_contains(self):
        assert 1 in Multiset([1])
        assert 2 not in Multiset([1])


class TestQueries:
    def test_find(self):
        ms = Multiset([1, 2, 3])
        assert ms.find(lambda a: isinstance(a, IntAtom) and a.value > 1) == IntAtom(2)

    def test_find_none(self):
        assert Multiset([1]).find(lambda a: False) is None

    def test_find_all(self):
        ms = Multiset([1, 2, 3])
        assert len(ms.find_all(lambda a: isinstance(a, IntAtom))) == 3

    def test_find_tuple_by_head(self):
        ms = Multiset([TupleAtom([Symbol("SRC"), Subsolution()]), TupleAtom([Symbol("DST"), Subsolution()])])
        assert ms.find_tuple("SRC").head_symbol() == "SRC"
        assert ms.find_tuple("RES") is None

    def test_replace_tuple(self):
        ms = Multiset([TupleAtom([Symbol("SRC"), Subsolution([Symbol("T1")])])])
        ms.replace_tuple("SRC", TupleAtom([Symbol("SRC"), Subsolution()]))
        assert len(ms.find_tuple("SRC")[1].solution) == 0

    def test_replace_tuple_adds_when_absent(self):
        ms = Multiset()
        ms.replace_tuple("PAR", TupleAtom([Symbol("PAR"), 1]))
        assert ms.find_tuple("PAR") is not None

    def test_has_symbol(self):
        assert Multiset([Symbol("ADAPT")]).has_symbol("ADAPT")
        assert not Multiset().has_symbol("ADAPT")

    def test_remove_symbol(self):
        ms = Multiset([Symbol("ADAPT")])
        assert ms.remove_symbol("ADAPT")
        assert not ms.remove_symbol("ADAPT")

    def test_subsolutions(self):
        ms = Multiset([Subsolution([1]), 2])
        assert len(ms.subsolutions()) == 1

    def test_rules_and_non_rules(self):
        rule = make_rule()
        ms = Multiset([rule, 1])
        assert ms.rules() == [rule]
        assert len(ms.non_rule_atoms()) == 1


class TestStructure:
    def test_copy_independent(self):
        ms = Multiset([Subsolution([1])])
        clone = ms.copy()
        ms.subsolutions()[0].solution.add(2)
        assert len(clone.subsolutions()[0].solution) == 1

    def test_union(self):
        combined = Multiset([1]).union(Multiset([2]))
        assert len(combined) == 2

    def test_size_recursive_counts_nested(self):
        ms = Multiset([Subsolution([1, 2]), TupleAtom([Symbol("T"), Subsolution([3])])])
        # 2 top-level + 2 nested + 1 nested-in-tuple
        assert ms.size_recursive() == 5

    def test_equality_ignores_order(self):
        assert Multiset([1, 2]) == Multiset([2, 1])

    def test_equality_respects_multiplicity(self):
        assert Multiset([1, 1]) != Multiset([1])

    def test_equality_with_other_type(self):
        assert Multiset([1]).__eq__(42) is NotImplemented

    def test_str_rendering(self):
        assert str(Multiset([1])) == "<1>"


class TestDirtyTracking:
    def test_version_bumps_on_mutation(self):
        ms = Multiset()
        v0 = ms.version
        ms.add(1)
        assert ms.version > v0
        v1 = ms.version
        ms.remove(1)
        assert ms.version > v1

    def test_nested_mutation_invalidates_ancestors(self):
        inner = Multiset([1])
        middle = Multiset([Subsolution(inner)])
        outer = Multiset([TupleAtom([Symbol("T"), Subsolution(middle)])])
        before = outer.version
        inner.add(2)
        assert outer.version > before
        assert middle.version > before

    def test_inert_marker_survives_reads_but_not_writes(self):
        ms = Multiset([1, 2])
        ms.note_inert()
        assert ms.known_inert
        ms.atoms(), list(ms), 1 in ms  # reads do not invalidate
        assert ms.known_inert
        ms.add(3)
        assert not ms.known_inert

    def test_nested_write_invalidates_parent_inert_marker(self):
        inner = Multiset()
        ms = Multiset([Subsolution(inner)])
        ms.note_inert()
        inner.add(1)
        assert not ms.known_inert


class TestCandidateIndex:
    def test_symbol_and_tuple_buckets(self):
        ms = Multiset([Symbol("ADAPT"), TupleAtom([Symbol("SRC"), 1]), 7])
        assert [str(a) for a in ms.candidates(("symbol", "ADAPT"))] == ["ADAPT"]
        assert [str(a) for a in ms.candidates(("tuple", "SRC"))] == ["SRC:1"]
        assert ms.has_candidates(("kind", "int"))
        assert not ms.has_candidates(("tuple", "DST"))

    def test_none_key_returns_all_in_insertion_order(self):
        ms = Multiset([3, Symbol("A"), 1])
        assert [str(a) for a in ms.candidates(None)] == ["3", "A", "1"]

    def test_bucket_preserves_insertion_order_with_duplicates(self):
        marker = Symbol("ADAPT")
        ms = Multiset()
        ms.add(marker)
        ms.add(Symbol("OTHER"))
        ms.add(marker)  # the same object twice: two distinct occurrences
        assert len(ms.candidate_entries(("symbol", "ADAPT"))) == 2
        ms.remove(marker)
        assert len(ms.candidate_entries(("symbol", "ADAPT"))) == 1

    def test_index_follows_removal(self):
        src = TupleAtom([Symbol("SRC"), 1])
        ms = Multiset([src, TupleAtom([Symbol("SRC"), 2])])
        ms.remove_identical(src)
        assert [str(a) for a in ms.candidates(("tuple", "SRC"))] == ["SRC:2"]
        assert ms.find_tuple("SRC") is not None

    def test_rules_by_priority_cached_ordering(self):
        low = Rule("low", [Var("x", kind="int")], [], priority=0)
        high = Rule("high", [Var("x", kind="int")], [], priority=5)
        ms = Multiset([low, high])
        assert [r.name for r in ms.rules_by_priority()] == ["high", "low"]
        ms.remove_identical(high)
        assert [r.name for r in ms.rules_by_priority()] == ["low"]

    def test_aliased_subsolution_invalidates_every_container(self):
        # the same sub-solution object contained in two multisets (and twice
        # in one) must invalidate all of its containers on mutation
        inner = Multiset([1])
        sub = Subsolution(inner)
        first = Multiset([sub, sub])
        second = Multiset([sub])
        v_first, v_second = first.version, second.version
        inner.add(2)
        assert first.version > v_first
        assert second.version > v_second
        first.remove_identical(sub)  # one occurrence gone, one left
        v_first = first.version
        inner.add(3)
        assert first.version > v_first
        second.remove_identical(sub)
        v_first, v_second = first.version, second.version
        inner.add(4)
        assert first.version > v_first  # still contained once
        assert second.version == v_second  # fully disowned
