"""Unit tests for the Multiset container."""

import pytest

from repro.hocl import IntAtom, Multiset, Rule, Subsolution, Symbol, TupleAtom, Var


def make_rule(name="r"):
    return Rule(name, [Var("x", kind="int")], [])


class TestBasicOperations:
    def test_empty(self):
        assert len(Multiset()) == 0

    def test_init_coerces(self):
        ms = Multiset([1, "a"])
        assert IntAtom(1) in ms

    def test_add_returns_atom(self):
        ms = Multiset()
        atom = ms.add(3)
        assert atom == IntAtom(3)

    def test_duplicates_allowed(self):
        ms = Multiset([1, 1, 1])
        assert ms.count(1) == 3

    def test_remove_one_occurrence(self):
        ms = Multiset([1, 1])
        ms.remove(1)
        assert ms.count(1) == 1

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            Multiset().remove(1)

    def test_discard_missing_returns_false(self):
        assert Multiset().discard(1) is False

    def test_discard_present_returns_true(self):
        assert Multiset([1]).discard(1) is True

    def test_remove_identical_uses_identity(self):
        a1, a2 = IntAtom(1), IntAtom(1)
        ms = Multiset([a1, a2])
        ms.remove_identical(a2)
        assert len(ms) == 1
        assert ms.atoms()[0] is a1

    def test_remove_identical_missing_raises(self):
        with pytest.raises(KeyError):
            Multiset([IntAtom(1)]).remove_identical(IntAtom(1))

    def test_clear(self):
        ms = Multiset([1, 2, 3])
        ms.clear()
        assert len(ms) == 0

    def test_contains(self):
        assert 1 in Multiset([1])
        assert 2 not in Multiset([1])


class TestQueries:
    def test_find(self):
        ms = Multiset([1, 2, 3])
        assert ms.find(lambda a: isinstance(a, IntAtom) and a.value > 1) == IntAtom(2)

    def test_find_none(self):
        assert Multiset([1]).find(lambda a: False) is None

    def test_find_all(self):
        ms = Multiset([1, 2, 3])
        assert len(ms.find_all(lambda a: isinstance(a, IntAtom))) == 3

    def test_find_tuple_by_head(self):
        ms = Multiset([TupleAtom([Symbol("SRC"), Subsolution()]), TupleAtom([Symbol("DST"), Subsolution()])])
        assert ms.find_tuple("SRC").head_symbol() == "SRC"
        assert ms.find_tuple("RES") is None

    def test_replace_tuple(self):
        ms = Multiset([TupleAtom([Symbol("SRC"), Subsolution([Symbol("T1")])])])
        ms.replace_tuple("SRC", TupleAtom([Symbol("SRC"), Subsolution()]))
        assert len(ms.find_tuple("SRC")[1].solution) == 0

    def test_replace_tuple_adds_when_absent(self):
        ms = Multiset()
        ms.replace_tuple("PAR", TupleAtom([Symbol("PAR"), 1]))
        assert ms.find_tuple("PAR") is not None

    def test_has_symbol(self):
        assert Multiset([Symbol("ADAPT")]).has_symbol("ADAPT")
        assert not Multiset().has_symbol("ADAPT")

    def test_remove_symbol(self):
        ms = Multiset([Symbol("ADAPT")])
        assert ms.remove_symbol("ADAPT")
        assert not ms.remove_symbol("ADAPT")

    def test_subsolutions(self):
        ms = Multiset([Subsolution([1]), 2])
        assert len(ms.subsolutions()) == 1

    def test_rules_and_non_rules(self):
        rule = make_rule()
        ms = Multiset([rule, 1])
        assert ms.rules() == [rule]
        assert len(ms.non_rule_atoms()) == 1


class TestStructure:
    def test_copy_independent(self):
        ms = Multiset([Subsolution([1])])
        clone = ms.copy()
        ms.subsolutions()[0].solution.add(2)
        assert len(clone.subsolutions()[0].solution) == 1

    def test_union(self):
        combined = Multiset([1]).union(Multiset([2]))
        assert len(combined) == 2

    def test_size_recursive_counts_nested(self):
        ms = Multiset([Subsolution([1, 2]), TupleAtom([Symbol("T"), Subsolution([3])])])
        # 2 top-level + 2 nested + 1 nested-in-tuple
        assert ms.size_recursive() == 5

    def test_equality_ignores_order(self):
        assert Multiset([1, 2]) == Multiset([2, 1])

    def test_equality_respects_multiplicity(self):
        assert Multiset([1, 1]) != Multiset([1])

    def test_equality_with_other_type(self):
        assert Multiset([1]).__eq__(42) is NotImplemented

    def test_str_rendering(self):
        assert str(Multiset([1])) == "<1>"
