"""Unit tests for rules, templates, externals and the reduction engine."""

import pytest

from repro.hocl import (
    Call,
    Compute,
    ExternalFunctionError,
    ExternalRegistry,
    IntAtom,
    ListAtom,
    ListTemplate,
    Literal,
    Multiset,
    Omega,
    PatternError,
    ReductionEngine,
    ReductionReport,
    Ref,
    Rule,
    RuleError,
    RulePattern,
    SolutionPattern,
    SolutionTemplate,
    Splice,
    Subsolution,
    Symbol,
    SymbolPattern,
    TupleTemplate,
    Var,
    default_registry,
    is_inert,
    reduce_solution,
    replace,
    replace_one,
    with_inject,
)


def max_rule():
    return Rule(
        "max",
        [Var("x", kind="int"), Var("y", kind="int")],
        [Ref("x")],
        condition=lambda b: b.value("x") >= b.value("y"),
    )


class TestTemplates:
    def test_ref_expands_bound_atom(self):
        assert Ref("x").expand({"x": IntAtom(1)}, None) == [IntAtom(1)]

    def test_ref_unbound_raises(self):
        with pytest.raises(PatternError):
            Ref("x").expand({}, None)

    def test_ref_on_omega_binding_raises(self):
        with pytest.raises(PatternError):
            Ref("w").expand({"w": [IntAtom(1)]}, None)

    def test_splice_expands_list(self):
        assert Splice("w").expand({"w": [IntAtom(1), IntAtom(2)]}, None) == [IntAtom(1), IntAtom(2)]

    def test_splice_single_value(self):
        assert Splice("w").expand({"w": IntAtom(1)}, None) == [IntAtom(1)]

    def test_tuple_template(self):
        atoms = TupleTemplate(Symbol("SRC"), Splice("w")).expand({"w": [IntAtom(1)]}, None)
        assert atoms[0].elements == (Symbol("SRC"), IntAtom(1))

    def test_solution_template(self):
        atoms = SolutionTemplate(1, 2).expand({}, None)
        assert atoms[0] == Subsolution([1, 2])

    def test_list_template(self):
        atoms = ListTemplate(1, Splice("w")).expand({"w": [IntAtom(2)]}, None)
        assert atoms[0] == ListAtom([1, 2])

    def test_call_requires_registry(self):
        with pytest.raises(ExternalFunctionError):
            Call("list", 1).expand({}, None)

    def test_call_invokes_registered_function(self):
        registry = default_registry()
        atoms = Call("list", 1, 2).expand({}, registry)
        assert atoms == [ListAtom([1, 2])]

    def test_compute_none_produces_nothing(self):
        assert Compute(lambda b: None).expand({}, None) == []

    def test_compute_value_coerced(self):
        assert Compute(lambda b: 7).expand({}, None) == [IntAtom(7)]


class TestExternals:
    def test_builtins_present(self):
        registry = default_registry()
        for name in ("list", "concat", "first", "flatten"):
            assert registry.knows(name)

    def test_unknown_function_raises(self):
        with pytest.raises(ExternalFunctionError):
            default_registry().invoke("nope", [], {})

    def test_register_and_invoke(self):
        registry = default_registry()
        registry.register("double", lambda args, b: IntAtom(args[0].value * 2))
        assert registry.invoke("double", [IntAtom(4)], {}) == IntAtom(8)

    def test_register_non_callable_raises(self):
        with pytest.raises(ExternalFunctionError):
            default_registry().register("x", 42)

    def test_failure_wrapped(self):
        registry = default_registry()
        registry.register("boom", lambda args, b: 1 / 0)
        with pytest.raises(ExternalFunctionError):
            registry.invoke("boom", [], {})

    def test_concat(self):
        registry = default_registry()
        result = registry.invoke("concat", [ListAtom([1]), ListAtom([2, 3])], {})
        assert result == ListAtom([1, 2, 3])

    def test_first(self):
        registry = default_registry()
        assert registry.invoke("first", [ListAtom([7, 8])], {}) == IntAtom(7)

    def test_first_empty_raises(self):
        with pytest.raises(ExternalFunctionError):
            default_registry().invoke("first", [ListAtom([])], {})

    def test_flatten(self):
        registry = default_registry()
        result = registry.invoke("flatten", [ListAtom([[1, [2]], 3])], {})
        assert result == ListAtom([1, 2, 3])

    def test_copy_is_independent(self):
        registry = default_registry()
        clone = registry.copy()
        clone.register("only-in-clone", lambda args, b: None)
        assert not registry.knows("only-in-clone")

    def test_unregister(self):
        registry = default_registry()
        registry.unregister("list")
        assert not registry.knows("list")


class TestRuleConstruction:
    def test_requires_name(self):
        with pytest.raises(RuleError):
            Rule("", [Var("x")], [])

    def test_requires_patterns(self):
        with pytest.raises(RuleError):
            Rule("r", [], [])

    def test_replace_is_nshot(self):
        assert replace("r", [Var("x")], []).one_shot is False

    def test_replace_one_is_oneshot(self):
        assert replace_one("r", [Var("x")], []).one_shot is True

    def test_with_inject_keeps_matched(self):
        rule = with_inject("r", [Var("x")], [Symbol("A")])
        assert rule.one_shot and rule.keep_matched

    def test_rules_equal_by_name(self):
        assert Rule("a", [Var("x")], []) == Rule("a", [Var("y")], [])
        assert Rule("a", [Var("x")], []) != Rule("b", [Var("x")], [])

    def test_condition_type_error_means_no_match(self):
        solution = Multiset([1, Symbol("A"), 2, max_rule()])
        # the symbol cannot satisfy the arithmetic condition; no crash
        report = reduce_solution(solution)
        assert report.inert


class TestReduction:
    def test_getmax(self):
        solution = Multiset([2, 3, 5, 8, 9, max_rule()])
        report = reduce_solution(solution)
        assert report.inert
        assert report.reactions == 4
        assert IntAtom(9) in solution
        assert len(solution) == 2  # rule + max value

    def test_one_shot_rule_removed_after_firing(self):
        rule = replace_one("once", [Var("x", kind="int")], [Symbol("DONE")])
        solution = Multiset([1, 2, rule])
        reduce_solution(solution)
        assert solution.has_symbol("DONE")
        assert rule not in solution
        # only one integer consumed
        assert sum(1 for a in solution.atoms() if isinstance(a, IntAtom)) == 1

    def test_with_inject_preserves_matched(self):
        rule = with_inject("inj", [Literal(1)], [Symbol("SEEN")])
        solution = Multiset([1, rule])
        reduce_solution(solution)
        assert 1 in solution
        assert solution.has_symbol("SEEN")

    def test_higher_order_rule_removal(self):
        inner_rule = max_rule()
        clean = replace_one(
            "clean",
            [SolutionPattern(RulePattern(name="max"), rest=Omega("w"))],
            [Splice("w")],
        )
        solution = Multiset([Subsolution([2, 9, inner_rule]), clean])
        reduce_solution(solution)
        assert IntAtom(9) in solution
        assert len(solution) == 1

    def test_nested_solutions_reduce_before_outer(self):
        # the outer rule extracts the content of the inner solution only once
        # the inner solution is inert (i.e. reduced to its maximum).
        extract = replace_one("extract", [SolutionPattern(Var("x", kind="int"), rest=Omega("w"))], [Ref("x")])
        solution = Multiset([Subsolution([3, 7, max_rule()]), extract])
        reduce_solution(solution)
        assert IntAtom(7) in solution

    def test_effect_hook_runs_on_fire(self):
        fired = []
        rule = replace_one("e", [Var("x", kind="int")], [], effect=lambda b: fired.append(b.value("x")))
        reduce_solution(Multiset([5, rule]))
        assert fired == [5]

    def test_priority_orders_rule_attempts(self):
        order = []
        low = replace_one("low", [Var("x", kind="int")], [], effect=lambda b: order.append("low"), priority=0)
        high = replace_one("high", [Var("x", kind="int")], [], effect=lambda b: order.append("high"), priority=5)
        reduce_solution(Multiset([1, 2, low, high]))
        assert order[0] == "high"

    def test_max_steps_marks_non_inert(self):
        # a rule that rewrites 1 -> 1 forever
        loop = replace("loop", [Literal(1)], [Literal(1).atom])
        solution = Multiset([1, loop])
        report = ReductionEngine(max_steps=10).reduce(solution)
        assert not report.inert
        assert report.reactions == 10

    def test_is_inert_helpers(self):
        assert is_inert(Multiset([1, 2]))
        assert not is_inert(Multiset([1, 2, max_rule()]))

    def test_step_applies_single_reaction(self):
        solution = Multiset([1, 2, max_rule()])
        engine = ReductionEngine()
        assert engine.step(solution) is True
        assert engine.step(solution) is False

    def test_observer_called(self):
        seen = []
        engine = ReductionEngine(observer=lambda rule, match, depth: seen.append(rule.name))
        engine.reduce(Multiset([1, 2, max_rule()]))
        assert seen == ["max"]

    def test_reduction_inside_tuple_wrapped_solution(self):
        # task sub-solutions live inside tuples; the engine must reduce them
        from repro.hocl import TupleAtom

        solution = Multiset([TupleAtom([Symbol("T1"), Subsolution([1, 4, max_rule()])])])
        report = reduce_solution(solution)
        assert report.reactions == 1

    def test_rule_cannot_consume_itself(self):
        eater = replace("eater", [RulePattern()], [])
        solution = Multiset([eater])
        report = reduce_solution(solution)
        assert report.reactions == 0
        assert eater in solution

    def test_report_history_records_rules(self):
        report = reduce_solution(Multiset([1, 2, max_rule()]))
        assert [r.rule for r in report.history] == ["max"]

    def test_report_merge(self):
        a = reduce_solution(Multiset([1, 2, max_rule()]))
        b = reduce_solution(Multiset([3, 4, max_rule()]))
        a.merge(b)
        assert a.reactions == 2


class TestIncrementalReduction:
    """The incremental engine must be a pure optimisation: identical traces,
    strictly less (re-)matching work, and non-mutating inertness checks."""

    def _workflowish_solution(self):
        """A small nested solution exercising sub-solutions, one-shot rules,
        priorities and higher-order removal in one program."""
        extract = replace_one(
            "extract", [SolutionPattern(Var("x", kind="int"), rest=Omega("w"))], [Ref("x")]
        )
        clean = replace_one(
            "clean", [SolutionPattern(RulePattern(name="max"), rest=Omega("w"))], [Splice("w")]
        )
        return Multiset(
            [
                Subsolution([3, 7, max_rule()]),
                Subsolution([2, 9, 4, max_rule()]),
                Symbol("ADAPT"),
                extract,
                clean,
            ]
        )

    @staticmethod
    def _trace(report):
        return [(r.rule, r.depth, r.consumed, r.produced) for r in report.history]

    def test_identical_history_to_naive_engine(self):
        incremental = self._workflowish_solution()
        naive = self._workflowish_solution()
        report_inc = ReductionEngine(incremental=True).reduce(incremental)
        report_naive = ReductionEngine(incremental=False).reduce(naive)
        assert self._trace(report_inc) == self._trace(report_naive)
        assert incremental == naive
        assert report_inc.match_attempts <= report_naive.match_attempts

    def test_rereducing_inert_solution_is_free(self):
        solution = Multiset([2, 3, 9, max_rule()])
        engine = ReductionEngine()
        engine.reduce(solution)
        again = engine.reduce(solution)
        assert again.reactions == 0
        assert again.match_attempts == 0  # inertness cache short-circuits
        assert again.inert

    def test_mutation_reenables_reduction(self):
        solution = Multiset([2, 9, max_rule()])
        engine = ReductionEngine()
        engine.reduce(solution)
        solution.add(11)
        report = engine.reduce(solution)
        assert report.reactions == 1
        assert IntAtom(11) in solution
        assert IntAtom(9) not in solution

    def test_nested_mutation_reenables_outer_reduction(self):
        extract = replace_one(
            "extract", [SolutionPattern(Var("x", kind="int"), rest=Omega("w"))], []
        )
        inner = Multiset([])
        solution = Multiset([Subsolution(inner), extract])
        engine = ReductionEngine()
        engine.reduce(solution)  # nothing to do: inner is empty
        inner.add(5)  # dirty the nested solution only
        report = engine.reduce(solution)
        assert report.reactions == 1

    def test_index_refuted_rules_are_not_charged(self):
        # `max` needs integers: with none present the indexed engine proves
        # inapplicability from the (empty) int bucket without a search.
        solution = Multiset([Symbol("A"), max_rule()])
        report = ReductionEngine(incremental=True).reduce(solution)
        assert report.match_attempts == 0
        assert report.inert
        naive = ReductionEngine(incremental=False).reduce(Multiset([Symbol("A"), max_rule()]))
        assert naive.match_attempts == 1

    def test_is_inert_leaves_solution_bit_identical(self):
        solution = self._workflowish_solution()
        ReductionEngine().reduce(solution)
        engine = ReductionEngine()
        before = solution.atoms()
        nested_before = [list(sub.solution) for sub in solution.subsolutions()]
        assert engine.is_inert(solution)
        after = solution.atoms()
        nested_after = [list(sub.solution) for sub in solution.subsolutions()]
        # identical objects in identical order, at every level
        assert len(before) == len(after)
        assert all(a is b for a, b in zip(before, after))
        assert all(
            len(xs) == len(ys) and all(x is y for x, y in zip(xs, ys))
            for xs, ys in zip(nested_before, nested_after)
        )

    def test_is_inert_match_attempt_accounting_consistent(self):
        # is_inert and reduce must count attempts the same way: a solution
        # proven inert by reduce() costs is_inert() nothing new, and a fresh
        # engine re-proving it performs the same searches reduce() would.
        first = self._workflowish_solution()
        second = self._workflowish_solution()
        engine = ReductionEngine()
        engine.reduce(first)
        report = ReductionReport()
        assert not engine._has_applicable_rule(first, report)
        assert report.match_attempts == 0  # cached inertness

        fresh = ReductionEngine()
        fresh_report = ReductionReport()
        ReductionEngine(incremental=False).reduce(second)  # no marks left behind
        assert not fresh._has_applicable_rule(second, fresh_report)
        probe = ReductionReport()
        assert not fresh._has_applicable_rule(self._reduced_copy(), probe)
        assert fresh_report.match_attempts == probe.match_attempts

    def _reduced_copy(self):
        solution = self._workflowish_solution()
        ReductionEngine(incremental=False).reduce(solution)
        return solution

    def test_step_respects_inertness_cache(self):
        solution = Multiset([1, 2, max_rule()])
        engine = ReductionEngine()
        engine.reduce(solution)
        assert engine.step(solution) is False
        solution.add(3)
        assert engine.step(solution) is True
