"""Unit tests for rules, templates, externals and the reduction engine."""

import pytest

from repro.hocl import (
    Call,
    Compute,
    ExternalFunctionError,
    ExternalRegistry,
    IntAtom,
    ListAtom,
    ListTemplate,
    Literal,
    Multiset,
    Omega,
    PatternError,
    ReductionEngine,
    Ref,
    Rule,
    RuleError,
    RulePattern,
    SolutionPattern,
    SolutionTemplate,
    Splice,
    Subsolution,
    Symbol,
    SymbolPattern,
    TupleTemplate,
    Var,
    default_registry,
    is_inert,
    reduce_solution,
    replace,
    replace_one,
    with_inject,
)


def max_rule():
    return Rule(
        "max",
        [Var("x", kind="int"), Var("y", kind="int")],
        [Ref("x")],
        condition=lambda b: b.value("x") >= b.value("y"),
    )


class TestTemplates:
    def test_ref_expands_bound_atom(self):
        assert Ref("x").expand({"x": IntAtom(1)}, None) == [IntAtom(1)]

    def test_ref_unbound_raises(self):
        with pytest.raises(PatternError):
            Ref("x").expand({}, None)

    def test_ref_on_omega_binding_raises(self):
        with pytest.raises(PatternError):
            Ref("w").expand({"w": [IntAtom(1)]}, None)

    def test_splice_expands_list(self):
        assert Splice("w").expand({"w": [IntAtom(1), IntAtom(2)]}, None) == [IntAtom(1), IntAtom(2)]

    def test_splice_single_value(self):
        assert Splice("w").expand({"w": IntAtom(1)}, None) == [IntAtom(1)]

    def test_tuple_template(self):
        atoms = TupleTemplate(Symbol("SRC"), Splice("w")).expand({"w": [IntAtom(1)]}, None)
        assert atoms[0].elements == (Symbol("SRC"), IntAtom(1))

    def test_solution_template(self):
        atoms = SolutionTemplate(1, 2).expand({}, None)
        assert atoms[0] == Subsolution([1, 2])

    def test_list_template(self):
        atoms = ListTemplate(1, Splice("w")).expand({"w": [IntAtom(2)]}, None)
        assert atoms[0] == ListAtom([1, 2])

    def test_call_requires_registry(self):
        with pytest.raises(ExternalFunctionError):
            Call("list", 1).expand({}, None)

    def test_call_invokes_registered_function(self):
        registry = default_registry()
        atoms = Call("list", 1, 2).expand({}, registry)
        assert atoms == [ListAtom([1, 2])]

    def test_compute_none_produces_nothing(self):
        assert Compute(lambda b: None).expand({}, None) == []

    def test_compute_value_coerced(self):
        assert Compute(lambda b: 7).expand({}, None) == [IntAtom(7)]


class TestExternals:
    def test_builtins_present(self):
        registry = default_registry()
        for name in ("list", "concat", "first", "flatten"):
            assert registry.knows(name)

    def test_unknown_function_raises(self):
        with pytest.raises(ExternalFunctionError):
            default_registry().invoke("nope", [], {})

    def test_register_and_invoke(self):
        registry = default_registry()
        registry.register("double", lambda args, b: IntAtom(args[0].value * 2))
        assert registry.invoke("double", [IntAtom(4)], {}) == IntAtom(8)

    def test_register_non_callable_raises(self):
        with pytest.raises(ExternalFunctionError):
            default_registry().register("x", 42)

    def test_failure_wrapped(self):
        registry = default_registry()
        registry.register("boom", lambda args, b: 1 / 0)
        with pytest.raises(ExternalFunctionError):
            registry.invoke("boom", [], {})

    def test_concat(self):
        registry = default_registry()
        result = registry.invoke("concat", [ListAtom([1]), ListAtom([2, 3])], {})
        assert result == ListAtom([1, 2, 3])

    def test_first(self):
        registry = default_registry()
        assert registry.invoke("first", [ListAtom([7, 8])], {}) == IntAtom(7)

    def test_first_empty_raises(self):
        with pytest.raises(ExternalFunctionError):
            default_registry().invoke("first", [ListAtom([])], {})

    def test_flatten(self):
        registry = default_registry()
        result = registry.invoke("flatten", [ListAtom([[1, [2]], 3])], {})
        assert result == ListAtom([1, 2, 3])

    def test_copy_is_independent(self):
        registry = default_registry()
        clone = registry.copy()
        clone.register("only-in-clone", lambda args, b: None)
        assert not registry.knows("only-in-clone")

    def test_unregister(self):
        registry = default_registry()
        registry.unregister("list")
        assert not registry.knows("list")


class TestRuleConstruction:
    def test_requires_name(self):
        with pytest.raises(RuleError):
            Rule("", [Var("x")], [])

    def test_requires_patterns(self):
        with pytest.raises(RuleError):
            Rule("r", [], [])

    def test_replace_is_nshot(self):
        assert replace("r", [Var("x")], []).one_shot is False

    def test_replace_one_is_oneshot(self):
        assert replace_one("r", [Var("x")], []).one_shot is True

    def test_with_inject_keeps_matched(self):
        rule = with_inject("r", [Var("x")], [Symbol("A")])
        assert rule.one_shot and rule.keep_matched

    def test_rules_equal_by_name(self):
        assert Rule("a", [Var("x")], []) == Rule("a", [Var("y")], [])
        assert Rule("a", [Var("x")], []) != Rule("b", [Var("x")], [])

    def test_condition_type_error_means_no_match(self):
        rule = max_rule()
        solution = Multiset([1, Symbol("A"), 2])
        # the symbol cannot satisfy the arithmetic condition; no crash
        report = reduce_solution(solution)
        assert report.inert


class TestReduction:
    def test_getmax(self):
        solution = Multiset([2, 3, 5, 8, 9, max_rule()])
        report = reduce_solution(solution)
        assert report.inert
        assert report.reactions == 4
        assert IntAtom(9) in solution
        assert len(solution) == 2  # rule + max value

    def test_one_shot_rule_removed_after_firing(self):
        rule = replace_one("once", [Var("x", kind="int")], [Symbol("DONE")])
        solution = Multiset([1, 2, rule])
        reduce_solution(solution)
        assert solution.has_symbol("DONE")
        assert rule not in solution
        # only one integer consumed
        assert sum(1 for a in solution.atoms() if isinstance(a, IntAtom)) == 1

    def test_with_inject_preserves_matched(self):
        rule = with_inject("inj", [Literal(1)], [Symbol("SEEN")])
        solution = Multiset([1, rule])
        reduce_solution(solution)
        assert 1 in solution
        assert solution.has_symbol("SEEN")

    def test_higher_order_rule_removal(self):
        inner_rule = max_rule()
        clean = replace_one(
            "clean",
            [SolutionPattern(RulePattern(name="max"), rest=Omega("w"))],
            [Splice("w")],
        )
        solution = Multiset([Subsolution([2, 9, inner_rule]), clean])
        reduce_solution(solution)
        assert IntAtom(9) in solution
        assert len(solution) == 1

    def test_nested_solutions_reduce_before_outer(self):
        # the outer rule extracts the content of the inner solution only once
        # the inner solution is inert (i.e. reduced to its maximum).
        extract = replace_one("extract", [SolutionPattern(Var("x", kind="int"), rest=Omega("w"))], [Ref("x")])
        solution = Multiset([Subsolution([3, 7, max_rule()]), extract])
        reduce_solution(solution)
        assert IntAtom(7) in solution

    def test_effect_hook_runs_on_fire(self):
        fired = []
        rule = replace_one("e", [Var("x", kind="int")], [], effect=lambda b: fired.append(b.value("x")))
        reduce_solution(Multiset([5, rule]))
        assert fired == [5]

    def test_priority_orders_rule_attempts(self):
        order = []
        low = replace_one("low", [Var("x", kind="int")], [], effect=lambda b: order.append("low"), priority=0)
        high = replace_one("high", [Var("x", kind="int")], [], effect=lambda b: order.append("high"), priority=5)
        reduce_solution(Multiset([1, 2, low, high]))
        assert order[0] == "high"

    def test_max_steps_marks_non_inert(self):
        # a rule that rewrites 1 -> 1 forever
        loop = replace("loop", [Literal(1)], [Literal(1).atom])
        solution = Multiset([1, loop])
        report = ReductionEngine(max_steps=10).reduce(solution)
        assert not report.inert
        assert report.reactions == 10

    def test_is_inert_helpers(self):
        assert is_inert(Multiset([1, 2]))
        assert not is_inert(Multiset([1, 2, max_rule()]))

    def test_step_applies_single_reaction(self):
        solution = Multiset([1, 2, max_rule()])
        engine = ReductionEngine()
        assert engine.step(solution) is True
        assert engine.step(solution) is False

    def test_observer_called(self):
        seen = []
        engine = ReductionEngine(observer=lambda rule, match, depth: seen.append(rule.name))
        engine.reduce(Multiset([1, 2, max_rule()]))
        assert seen == ["max"]

    def test_reduction_inside_tuple_wrapped_solution(self):
        # task sub-solutions live inside tuples; the engine must reduce them
        from repro.hocl import TupleAtom

        solution = Multiset([TupleAtom([Symbol("T1"), Subsolution([1, 4, max_rule()])])])
        report = reduce_solution(solution)
        assert report.reactions == 1

    def test_rule_cannot_consume_itself(self):
        eater = replace("eater", [RulePattern()], [])
        solution = Multiset([eater])
        report = reduce_solution(solution)
        assert report.reactions == 0
        assert eater in solution

    def test_report_history_records_rules(self):
        report = reduce_solution(Multiset([1, 2, max_rule()]))
        assert [r.rule for r in report.history] == ["max"]

    def test_report_merge(self):
        a = reduce_solution(Multiset([1, 2, max_rule()]))
        b = reduce_solution(Multiset([3, 4, max_rule()]))
        a.merge(b)
        assert a.reactions == 2
