"""Unit tests for the executors (SSH, Mesos, centralised)."""

import pytest

from repro.cluster import Cluster, Node, grid5000_cluster
from repro.executors import (
    CentralizedExecutor,
    DeploymentPlan,
    MesosExecutor,
    SSHExecutor,
)
from repro.services import ServiceRegistry
from repro.workflow import Task, Workflow, adaptive_diamond_workflow, diamond_workflow


def agent_names(count):
    return [f"agent-{i}" for i in range(count)]


class TestDeploymentPlan:
    def test_validate_consistency(self):
        plan = DeploymentPlan(placement={"a": "n1"}, ready_times={"a": 1.0}, deployment_time=1.0)
        plan.validate()

    def test_validate_missing_ready_time(self):
        plan = DeploymentPlan(placement={"a": "n1"}, ready_times={}, deployment_time=1.0)
        with pytest.raises(ValueError):
            plan.validate()

    def test_validate_deployment_time_bound(self):
        plan = DeploymentPlan(placement={"a": "n1"}, ready_times={"a": 5.0}, deployment_time=1.0)
        with pytest.raises(ValueError):
            plan.validate()

    def test_agents_on(self):
        plan = DeploymentPlan(placement={"a": "n1", "b": "n2", "c": "n1"}, ready_times={"a": 1, "b": 1, "c": 1}, deployment_time=1)
        assert sorted(plan.agents_on("n1")) == ["a", "c"]


class TestSSHExecutor:
    def test_places_all_agents(self):
        plan = SSHExecutor().plan(grid5000_cluster(10), agent_names(102))
        assert len(plan.placement) == 102
        assert plan.executor == "ssh"
        assert plan.deployment_time >= max(plan.ready_times.values())

    def test_round_robin_spread(self):
        cluster = Cluster([Node("a", 4), Node("b", 4)])
        plan = SSHExecutor().plan(cluster, agent_names(4))
        assert len(set(plan.placement.values())) == 2

    def test_deployment_time_increases_slightly_with_nodes(self):
        executor = SSHExecutor()
        times = [executor.plan(grid5000_cluster(n), agent_names(102)).deployment_time for n in (5, 10, 15)]
        assert times[2] >= times[0]
        assert times[2] - times[0] < 10.0

    def test_capacity_check(self):
        cluster = Cluster([Node("a", 1, agents_per_core=1)])
        with pytest.raises(RuntimeError):
            SSHExecutor().plan(cluster, agent_names(2))


class TestMesosExecutor:
    def test_places_all_agents(self):
        plan = MesosExecutor().plan(grid5000_cluster(10), agent_names(102))
        assert len(plan.placement) == 102
        assert plan.executor == "mesos"

    def test_one_agent_per_machine_per_offer(self):
        cluster = Cluster([Node("a", 4), Node("b", 4)])
        executor = MesosExecutor(offer_interval=2.0, registration_delay=1.0, agent_start_time=0.0)
        plan = executor.plan(cluster, agent_names(4))
        # 2 agents per round, 2 rounds: ready times 1.0, 1.0, 3.0, 3.0
        assert sorted(plan.ready_times.values()) == [1.0, 1.0, 3.0, 3.0]

    def test_deployment_time_decreases_with_nodes(self):
        executor = MesosExecutor()
        times = [executor.plan(grid5000_cluster(n), agent_names(102)).deployment_time for n in (5, 10, 15)]
        assert times[0] > times[1] > times[2]

    def test_capacity_check(self):
        cluster = Cluster([Node("a", 1, agents_per_core=1)])
        with pytest.raises(RuntimeError):
            MesosExecutor().plan(cluster, agent_names(3))


class TestCentralizedExecutor:
    def test_executes_diamond(self):
        outcome = CentralizedExecutor().execute(diamond_workflow(3, 2))
        assert outcome.result_of("merge") == "merge-out"
        assert outcome.invocations == 3 * 2 + 2
        assert not outcome.errors

    def test_executes_adaptive_diamond(self):
        outcome = CentralizedExecutor().execute(adaptive_diamond_workflow(2, 2))
        assert outcome.result_of("merge") == "merge-out"
        assert "T_2_2" in outcome.errors
        assert outcome.result_of("R_2_2") == "R_2_2-out"

    def test_registered_python_services_do_real_work(self):
        registry = ServiceRegistry()
        registry.register_function("double", lambda value: value * 2)
        registry.register_function("add", lambda a, b: a + b)
        workflow = Workflow("math")
        workflow.add_task(Task("A", "double", inputs=[21]))
        workflow.add_task(Task("B", "double", inputs=[10]))
        workflow.add_task(Task("C", "add"))
        workflow.add_dependency("A", "C")
        workflow.add_dependency("B", "C")
        outcome = CentralizedExecutor(registry=registry).execute(workflow)
        assert outcome.result_of("A") == 42
        assert outcome.result_of("C") == 62

    def test_failed_service_reports_error(self):
        workflow = Workflow("failing")
        workflow.add_task(Task("A", "synthetic", inputs=[1], metadata={"force_error": True}))
        outcome = CentralizedExecutor().execute(workflow)
        assert "A" in outcome.errors
        assert outcome.result_of("A") is None
