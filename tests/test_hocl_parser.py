"""Unit tests for the HOCL ASCII parser."""

import pytest

from repro.hocl import (
    IntAtom,
    ListAtom,
    ParseError,
    Rule,
    StringAtom,
    Subsolution,
    Symbol,
    TupleAtom,
    parse_program,
    parse_solution,
    reduce_solution,
)


class TestSolutionLiterals:
    def test_empty_solution(self):
        assert len(parse_solution("<>")) == 0

    def test_numbers(self):
        solution = parse_solution("<1, 2.5, -3>")
        assert IntAtom(1) in solution
        assert IntAtom(-3) in solution

    def test_strings(self):
        solution = parse_solution('<"hello world">')
        assert StringAtom("hello world") in solution

    def test_symbols(self):
        solution = parse_solution("<ADAPT, T1>")
        assert solution.has_symbol("ADAPT")
        assert solution.has_symbol("T1")

    def test_nested_solutions(self):
        solution = parse_solution("<<1, 2>, 3>")
        assert len(solution.subsolutions()) == 1

    def test_tuples(self):
        solution = parse_solution("<SRC : <T1, T2>>")
        field = solution.find_tuple("SRC")
        assert field is not None
        assert isinstance(field.elements[1], Subsolution)

    def test_lists(self):
        solution = parse_solution("<[1, 2, 3]>")
        assert ListAtom([1, 2, 3]) in solution

    def test_comments_ignored(self):
        solution = parse_solution("<1, # a comment\n 2>")
        assert len(solution) == 2

    def test_primes_in_names(self):
        solution = parse_solution("<T2'>")
        assert solution.has_symbol("T2'")


class TestRuleDefinitions:
    def test_simple_replace_rule(self):
        program = parse_program("let max = replace x, y by x if x >= y in <2, 9, max>")
        assert "max" in program.rules
        assert program.rules["max"].one_shot is False
        reduce_solution(program.solution)
        assert IntAtom(9) in program.solution

    def test_replace_one_is_one_shot(self):
        program = parse_program("let once = replace-one x by x in <1, once>")
        assert program.rules["once"].one_shot is True

    def test_with_inject_sugar(self):
        program = parse_program("let w = with ERROR inject ADAPT in <ERROR, w>")
        rule = program.rules["w"]
        assert rule.one_shot and rule.keep_matched
        reduce_solution(program.solution)
        assert program.solution.has_symbol("ADAPT")
        assert program.solution.has_symbol("ERROR")

    def test_condition_operators(self):
        for operator in ("<", ">", "=="):
            source = f"let r = replace-one x, y by x if x {operator} y in <2, 9, r>"
            program = parse_program(source)
            reduce_solution(program.solution)

    def test_string_condition(self):
        program = parse_program('let r = replace-one x by DONE if x == "go" in <"go", r>')
        reduce_solution(program.solution)
        assert program.solution.has_symbol("DONE")

    def test_omega_in_pattern_and_product(self):
        program = parse_program("let clean = replace-one <DONE, ?w> by ?w in <<1, 2, DONE>, clean>")
        reduce_solution(program.solution)
        assert IntAtom(1) in program.solution
        assert IntAtom(2) in program.solution
        assert not program.solution.has_symbol("DONE")

    def test_rule_reference_in_later_definition(self):
        source = (
            "let max = replace x, y by x if x >= y in "
            "let clean = replace-one <max, ?w> by ?w in "
            "<<2, 3, 5, 8, 9, max>, clean>"
        )
        program = parse_program(source)
        reduce_solution(program.solution)
        assert len(program.solution) == 1
        assert IntAtom(9) in program.solution

    def test_function_call_in_product(self):
        program = parse_program("let mk = replace-one x, y by list(x, y) in <1, 2, mk>")
        reduce_solution(program.solution)
        assert any(isinstance(a, ListAtom) for a in program.solution.atoms())

    def test_uppercase_names_are_symbols_in_patterns(self):
        program = parse_program("let r = replace-one ERROR by FIXED in <ERROR, r>")
        reduce_solution(program.solution)
        assert program.solution.has_symbol("FIXED")

    def test_tuple_pattern_and_product(self):
        source = "let r = replace-one SRC : <> by SRC : <T9> in <SRC : <>, r>"
        program = parse_program(source)
        reduce_solution(program.solution)
        field = program.solution.find_tuple("SRC")
        assert Symbol("T9") in field.elements[1].solution


class TestErrors:
    def test_missing_in_keyword(self):
        with pytest.raises(ParseError):
            parse_program("let r = replace x by x <1>")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("<1 @ 2>")

    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_program("<1> <2>")

    def test_missing_solution(self):
        with pytest.raises(ParseError):
            parse_program("let r = replace x by x in 42")

    def test_unclosed_solution(self):
        with pytest.raises(ParseError):
            parse_program("<1, 2")

    def test_bad_condition_operator(self):
        with pytest.raises(ParseError):
            parse_program("let r = replace x by x if x ~ 1 in <1, r>")

    def test_error_reports_line(self):
        try:
            parse_program("<1,\n @>")
        except ParseError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
