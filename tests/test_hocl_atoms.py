"""Unit tests for the HOCL atom model."""

import pytest

from repro.hocl import (
    AtomError,
    BoolAtom,
    FloatAtom,
    IntAtom,
    ListAtom,
    StringAtom,
    Subsolution,
    Symbol,
    TupleAtom,
    atoms_equal,
    from_atom,
    to_atom,
)


class TestScalarAtoms:
    def test_int_atom_value(self):
        assert IntAtom(5).value == 5

    def test_int_atom_rejects_bool(self):
        with pytest.raises(AtomError):
            IntAtom(True)

    def test_int_atom_rejects_float(self):
        with pytest.raises(AtomError):
            IntAtom(1.5)

    def test_float_atom_accepts_int(self):
        assert FloatAtom(3).value == 3.0

    def test_float_atom_rejects_string(self):
        with pytest.raises(AtomError):
            FloatAtom("x")

    def test_bool_atom(self):
        assert BoolAtom(True).value is True

    def test_bool_atom_rejects_int(self):
        with pytest.raises(AtomError):
            BoolAtom(1)

    def test_string_atom(self):
        assert StringAtom("hello").value == "hello"

    def test_string_atom_rejects_int(self):
        with pytest.raises(AtomError):
            StringAtom(3)

    def test_scalar_equality(self):
        assert IntAtom(4) == IntAtom(4)
        assert IntAtom(4) != IntAtom(5)

    def test_scalar_cross_type_inequality(self):
        assert IntAtom(1) != FloatAtom(1.0)

    def test_scalar_hashable(self):
        assert len({IntAtom(1), IntAtom(1), IntAtom(2)}) == 2

    def test_kind_tags(self):
        assert IntAtom(1).kind == "int"
        assert FloatAtom(1.0).kind == "float"
        assert StringAtom("a").kind == "string"
        assert BoolAtom(False).kind == "bool"


class TestSymbol:
    def test_symbol_name(self):
        assert Symbol("ADAPT").name == "ADAPT"

    def test_symbol_equality(self):
        assert Symbol("A") == Symbol("A")
        assert Symbol("A") != Symbol("B")

    def test_symbol_rejects_empty(self):
        with pytest.raises(AtomError):
            Symbol("")

    def test_symbol_str(self):
        assert str(Symbol("ERROR")) == "ERROR"

    def test_symbol_not_equal_to_string_atom(self):
        assert Symbol("x") != StringAtom("x")


class TestTupleAtom:
    def test_head_and_rest(self):
        atom = TupleAtom([Symbol("SRC"), 1, 2])
        assert atom.head == Symbol("SRC")
        assert atom.rest == (IntAtom(1), IntAtom(2))

    def test_head_symbol(self):
        assert TupleAtom([Symbol("DST"), 1]).head_symbol() == "DST"
        assert TupleAtom([IntAtom(1), 2]).head_symbol() is None

    def test_requires_one_element(self):
        with pytest.raises(AtomError):
            TupleAtom([])

    def test_coerces_elements(self):
        atom = TupleAtom(["a", 1])
        assert isinstance(atom[0], StringAtom)
        assert isinstance(atom[1], IntAtom)

    def test_equality_is_structural(self):
        assert TupleAtom([1, 2]) == TupleAtom([1, 2])
        assert TupleAtom([1, 2]) != TupleAtom([2, 1])

    def test_len_and_iter(self):
        atom = TupleAtom([1, 2, 3])
        assert len(atom) == 3
        assert [from_atom(e) for e in atom] == [1, 2, 3]

    def test_copy_is_deep(self):
        inner = Subsolution([1])
        atom = TupleAtom([Symbol("T"), inner])
        clone = atom.copy()
        inner.solution.add(2)
        assert len(clone[1].solution) == 1

    def test_is_structured(self):
        assert TupleAtom([1]).is_structured()


class TestListAtom:
    def test_empty_list(self):
        assert len(ListAtom()) == 0

    def test_append_returns_new(self):
        original = ListAtom([1])
        extended = original.append(2)
        assert len(original) == 1
        assert len(extended) == 2

    def test_extend(self):
        assert ListAtom([1]).extend([2, 3]).to_python() == [1, 2, 3]

    def test_to_python(self):
        assert ListAtom([1, "a", [2]]).to_python() == [1, "a", [2]]

    def test_equality(self):
        assert ListAtom([1, 2]) == ListAtom([1, 2])
        assert ListAtom([1, 2]) != ListAtom([2, 1])

    def test_indexing(self):
        assert ListAtom([5, 6])[1] == IntAtom(6)


class TestSubsolution:
    def test_wraps_iterable(self):
        sub = Subsolution([1, 2, 3])
        assert len(sub) == 3

    def test_equality_ignores_order(self):
        assert Subsolution([1, 2]) == Subsolution([2, 1])

    def test_inequality_on_counts(self):
        assert Subsolution([1, 1]) != Subsolution([1])

    def test_copy_is_deep(self):
        sub = Subsolution([1])
        clone = sub.copy()
        sub.solution.add(2)
        assert len(clone) == 1

    def test_hash_consistent_with_equality(self):
        assert hash(Subsolution([1, 2])) == hash(Subsolution([2, 1]))


class TestCoercion:
    def test_to_atom_passthrough(self):
        atom = IntAtom(1)
        assert to_atom(atom) is atom

    def test_to_atom_scalars(self):
        assert isinstance(to_atom(1), IntAtom)
        assert isinstance(to_atom(1.5), FloatAtom)
        assert isinstance(to_atom(True), BoolAtom)
        assert isinstance(to_atom("x"), StringAtom)

    def test_to_atom_list(self):
        assert isinstance(to_atom([1, 2]), ListAtom)

    def test_to_atom_rejects_dict(self):
        with pytest.raises(AtomError):
            to_atom({"a": 1})

    def test_from_atom_roundtrip(self):
        assert from_atom(to_atom(42)) == 42
        assert from_atom(to_atom("x")) == "x"
        assert from_atom(to_atom([1, 2])) == [1, 2]

    def test_from_atom_symbol(self):
        assert from_atom(Symbol("A")) == "A"

    def test_from_atom_tuple(self):
        assert from_atom(TupleAtom([1, 2])) == (1, 2)

    def test_atoms_equal_helper(self):
        assert atoms_equal(1, 1)
        assert not atoms_equal(1, 2)
