"""Delta-vs-rebuild parity of the HOCL rewrite pipeline.

Every rule that carries a :class:`~repro.hocl.deltas.RewriteDelta` also keeps
its classic product templates as the rebuild reference, and the engine's two
paths — ``ReductionEngine(delta=True)`` (the default, in-place copy-on-write
patches) and ``delta=False`` (full product reconstruction) — are required to
be *trace-identical*: same final solution (content hash), same reaction
multiset (``rule_fires``), same history, same ``match_attempts``, same
inertness.  Three layers of evidence:

* **unit** — the delta data model validates its addressing (consume vs patch
  indices, pattern ranges, ``keep_matched`` exclusivity) and its application
  accounting (``AppliedDelta`` removed/added/kept);
* **property-based fuzz** — hypothesis drives random seeded solutions
  through both engine paths on hand-written delta rules (a consume-style
  getMax and a patch-style drain), asserting trace identity;
* **end-to-end** — every scenario family of the catalog, reduced under every
  strategy (``serial``/``batch``/``parallel``), agrees between the two
  paths; and full runtime enactments (simulated/threaded/asyncio/
  centralized) report the same results either way, with the simulated
  runtime's virtual-time trace bit-identical.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.hocl import (
    DeltaError,
    IntAtom,
    Multiset,
    Omega,
    PatchAdd,
    PatchRemove,
    ReductionEngine,
    Ref,
    RewriteDelta,
    Rule,
    RuleError,
    SolutionPattern,
    SolutionTemplate,
    Splice,
    Symbol,
    SymbolPattern,
    TuplePattern,
    TupleTemplate,
    Var,
)
from repro.hocl.parallel import BUILTIN_POLICIES, reduce_sharded, resolve_policy
from repro.hoclflow import encode_workflow
from repro.hoclflow.generic_rules import register_workflow_externals
from repro.hocl import default_registry
from repro.runtime import GinFlow, backends
from repro.scenarios import available_scenarios, build_scenario
from repro.services import ServiceRegistry
from repro.workflow import diamond_workflow


# ------------------------------------------------------------- fixture rules
def getmax_delta_rule():
    """Pairwise max, delta form: keep the winner in place, consume the loser."""
    return Rule(
        "max",
        [Var("x", kind="int"), Var("y", kind="int")],
        [Ref("x")],
        condition=lambda b: b.value("x") >= b.value("y"),
        delta=RewriteDelta(consume=(1,)),
    )


def drain_rule():
    """Move one item from the BAG body into the SINK body, patch style.

    Rebuild products list the kept fields first in pattern order (the
    convention the trace-identity guarantee relies on).
    """
    return Rule(
        "drain",
        [
            TuplePattern(SymbolPattern("BAG"), SolutionPattern(Var("x", kind="int"), rest=Omega("w"))),
            TuplePattern(SymbolPattern("SINK"), SolutionPattern(rest=Omega("ws"))),
        ],
        [
            TupleTemplate(Symbol("BAG"), SolutionTemplate(Splice("w"))),
            TupleTemplate(Symbol("SINK"), SolutionTemplate(Ref("x"), Splice("ws"))),
        ],
        delta=RewriteDelta(
            ops=(
                PatchRemove(at=0, items=(Ref("x"),)),
                PatchAdd(at=1, templates=(Ref("x"),)),
            )
        ),
    )


def _trace(report):
    return [(r.rule, r.depth, r.consumed, r.produced) for r in report.history]


def _reduce(atoms, delta, batch=False):
    solution = Multiset(atoms)
    report = ReductionEngine(delta=delta, batch=batch).reduce(solution)
    return report, solution


# ------------------------------------------------------------------ unit
class TestDeltaDataModel:
    def test_patch_on_consumed_pattern_rejected(self):
        with pytest.raises(DeltaError, match="also consumes"):
            RewriteDelta(consume=(0,), ops=(PatchAdd(at=0, templates=(Symbol("A"),)),))

    def test_rule_rejects_keep_matched_with_delta(self):
        with pytest.raises(RuleError, match="keep_matched"):
            Rule(
                "bad",
                [Var("x")],
                [],
                keep_matched=True,
                delta=RewriteDelta(consume=(0,)),
            )

    def test_rule_rejects_out_of_range_delta_index(self):
        with pytest.raises(RuleError, match="delta addresses pattern"):
            Rule("bad", [Var("x")], [], delta=RewriteDelta(consume=(3,)))

    def test_patch_remove_of_absent_item_is_an_error(self):
        rule = Rule(
            "broken",
            [
                TuplePattern(SymbolPattern("BAG"), SolutionPattern(rest=Omega("w"))),
                Var("x", kind="int"),
            ],
            [
                TupleTemplate(Symbol("BAG"), SolutionTemplate(Splice("w"))),
            ],
            delta=RewriteDelta(
                consume=(1,),
                ops=(PatchRemove(at=0, items=(Symbol("GHOST"),)),),
            ),
        )
        solution = Multiset([TupleTemplate(Symbol("BAG"), SolutionTemplate()).expand({}, None)[0], 1, rule])
        from repro.hocl import ReductionError

        with pytest.raises(ReductionError, match="rewrite delta"):
            ReductionEngine().reduce(solution)

    def test_applied_delta_accounting(self):
        delta = drain_rule().delta
        assert delta is not None
        report, solution = _reduce(
            [
                TupleTemplate(Symbol("BAG"), SolutionTemplate(IntAtom(1), IntAtom(2))).expand({}, None)[0],
                TupleTemplate(Symbol("SINK"), SolutionTemplate()).expand({}, None)[0],
                drain_rule(),
            ],
            delta=True,
        )
        assert report.inert
        assert report.patched == 2  # both drains applied in place
        # history records the rebuild-equivalent counts: 2 consumed patterns,
        # 2 dirty products (the kept BAG and SINK anchors) per fire
        assert {(r.consumed, r.produced) for r in report.history if r.rule == "drain"} == {(2, 2)}

    def test_referenced_variables_include_delta_reads(self):
        rule = drain_rule()
        assert "x" in rule.referenced_variables()


# -------------------------------------------------------------- fuzz parity
integers = st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=25)


@settings(max_examples=50, deadline=None)
@given(integers)
def test_getmax_delta_parity(values):
    delta_report, delta_solution = _reduce(values + [getmax_delta_rule()], delta=True)
    rebuild_report, rebuild_solution = _reduce(values + [getmax_delta_rule()], delta=False)
    assert delta_report.inert and rebuild_report.inert
    assert delta_solution.content_hash() == rebuild_solution.content_hash()
    assert delta_report.rule_fires == rebuild_report.rule_fires
    assert _trace(delta_report) == _trace(rebuild_report)
    assert delta_report.match_attempts == rebuild_report.match_attempts
    assert rebuild_report.patched == 0
    remaining = [a.value for a in delta_solution.atoms() if isinstance(a, IntAtom)]
    assert remaining == [max(values)]


@settings(max_examples=50, deadline=None)
@given(integers, st.booleans())
def test_drain_delta_parity(values, batch):
    def atoms():
        return [
            TupleTemplate(Symbol("BAG"), SolutionTemplate(*[IntAtom(v) for v in values])).expand({}, None)[0],
            TupleTemplate(Symbol("SINK"), SolutionTemplate()).expand({}, None)[0],
            drain_rule(),
        ]

    delta_report, delta_solution = _reduce(atoms(), delta=True, batch=batch)
    rebuild_report, rebuild_solution = _reduce(atoms(), delta=False, batch=batch)
    assert delta_report.inert and rebuild_report.inert
    assert delta_solution.content_hash() == rebuild_solution.content_hash()
    assert delta_report.rule_fires == rebuild_report.rule_fires
    assert _trace(delta_report) == _trace(rebuild_report)
    assert delta_report.match_attempts == rebuild_report.match_attempts
    assert delta_report.patched == len(values)
    assert rebuild_report.patched == 0


# -------------------------------------------------- scenario/strategy parity
def _reduce_workflow(workflow, mode, delta):
    """Centralised reduction under one strategy; mirrors the bench harness."""
    encoding = encode_workflow(workflow)
    solution = encoding.to_multiset()
    registry = ServiceRegistry()

    def invoke(task_name, service_name, parameters):
        task = encoding.tasks[task_name]
        from repro.services import InvocationContext

        context = InvocationContext(task_name=task_name, duration=task.duration, metadata=task.metadata, attempt=1)
        outcome = registry.resolve(service_name).invoke(list(parameters), context)
        if outcome.failed:
            raise RuntimeError(outcome.error or "invocation failed")
        return outcome.value

    externals = default_registry()
    register_workflow_externals(externals, invoke)
    policy = resolve_policy(mode)
    if not delta:
        policy = dataclasses.replace(policy, delta=False)

    def engine_factory():
        return ReductionEngine(externals=externals, max_steps=1_000_000, **policy.engine_options())

    if policy.parallel:
        reducer = policy.make_reducer()
        try:
            report = reduce_sharded(solution, engine_factory, reducer, max_steps=1_000_000)
        finally:
            reducer.shutdown()
    else:
        report = engine_factory().reduce(solution)
    assert report.inert
    return report, solution


def _small_spec(family):
    return f"{family}:size=24,seed=3"


@pytest.mark.parametrize("family", available_scenarios())
@pytest.mark.parametrize("mode", ["serial", "batch", "parallel"])
def test_scenario_family_delta_parity(family, mode):
    delta_report, delta_solution = _reduce_workflow(build_scenario(_small_spec(family)), mode, delta=True)
    rebuild_report, rebuild_solution = _reduce_workflow(build_scenario(_small_spec(family)), mode, delta=False)
    assert delta_solution.content_hash() == rebuild_solution.content_hash()
    assert delta_report.rule_fires == rebuild_report.rule_fires
    assert _trace(delta_report) == _trace(rebuild_report)
    assert delta_report.match_attempts == rebuild_report.match_attempts
    assert delta_report.patched > 0, f"{family}/{mode}: no reaction took the delta path"
    assert rebuild_report.patched == 0


# ------------------------------------------------------------ runtime parity
@pytest.fixture(scope="module")
def rebuild_policy_name():
    """A temporarily registered serial policy forcing the rebuild path."""
    backends.ensure_builtin_backends()
    name = "serial-rebuild-parity"
    backends.register_reduction(
        name,
        lambda config=None: dataclasses.replace(BUILTIN_POLICIES["serial"], name=name, delta=False),
    )
    yield name
    backends.registry.unregister("reduction", name)


@pytest.mark.parametrize("mode", ["simulated", "threaded", "asyncio", "centralized"])
def test_runtime_delta_parity(mode, rebuild_policy_name):
    workflow = diamond_workflow(4, 3)
    delta_run = GinFlow().run(workflow, mode=mode, nodes=5, reduction="serial")
    rebuild_run = GinFlow().run(workflow, mode=mode, nodes=5, reduction=rebuild_policy_name)
    assert delta_run.succeeded and rebuild_run.succeeded
    assert delta_run.results == rebuild_run.results
    assert delta_run.reduction_reactions == rebuild_run.reduction_reactions


def test_simulated_trace_bit_identical(rebuild_policy_name):
    """The simulated runtime's virtual-time trace is identical either way."""
    workflow = diamond_workflow(6, 4, connectivity="full")
    delta_run = GinFlow().run(workflow, mode="simulated", nodes=10, reduction="serial")
    rebuild_run = GinFlow().run(workflow, mode="simulated", nodes=10, reduction=rebuild_policy_name)
    assert delta_run.succeeded and rebuild_run.succeeded
    assert delta_run.results == rebuild_run.results
    assert delta_run.makespan == rebuild_run.makespan
    assert delta_run.execution_time == rebuild_run.execution_time
    assert delta_run.messages_published == rebuild_run.messages_published
    assert delta_run.messages_delivered == rebuild_run.messages_delivered
    assert delta_run.reduction_reactions == rebuild_run.reduction_reactions
    assert delta_run.reduction_match_attempts == rebuild_run.reduction_match_attempts
    assert delta_run.timeline == rebuild_run.timeline
    assert {name: outcome.finished_at for name, outcome in delta_run.tasks.items()} == {
        name: outcome.finished_at for name, outcome in rebuild_run.tasks.items()
    }
