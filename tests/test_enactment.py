"""Tests for the runtime-agnostic enactment engine and its drivers.

Covers the coordinator query helpers and fail-fast completion, the report
parity guarantee (same workflow → identical task rows across the simulated,
threaded and asyncio runtimes, modulo timing/placement fields), the real
delivered-message accounting of the in-process broker, and the asyncio
runtime end-to-end (the same workflow tests the threaded runtime passes).
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.agents import Coordinator
from repro.messaging import ACTIVEMQ_PROFILE, InProcessBroker, Message, MessageKind
from repro.runtime import (
    AsyncioRun,
    GinFlow,
    GinFlowConfig,
    available_runtimes,
    run_asyncio,
    run_simulation,
    run_threaded,
)
from repro.runtime.enactment import MonotonicClock, VirtualClock
from repro.services import ServiceRegistry
from repro.simkernel import Simulator
from repro.workflow import Task, Workflow, adaptive_diamond_workflow, diamond_workflow


def _status(state="completed", has_result=True, has_error=False):
    return {"state": state, "has_result": has_result, "has_error": has_error}


def _failing_exit_diamond(width=2, depth=2):
    workflow = diamond_workflow(width, depth)
    workflow.task("merge").metadata["force_error"] = True
    return workflow


class TestCoordinatorQueries:
    def test_progress_counts_results(self):
        coordinator = Coordinator(exit_tasks=["C"])
        assert coordinator.progress() == 0.0
        coordinator.record_status("A", _status())
        coordinator.record_status("B", _status("invoking", has_result=False))
        coordinator.record_status("C", _status("ready", has_result=False))
        assert coordinator.progress() == pytest.approx(1 / 3)

    def test_tasks_in_state(self):
        coordinator = Coordinator(exit_tasks=["C"])
        coordinator.record_status("A", _status("completed"))
        coordinator.record_status("B", _status("invoking", has_result=False))
        coordinator.record_status("C", _status("invoking", has_result=False))
        assert coordinator.tasks_in_state("completed") == ["A"]
        assert sorted(coordinator.tasks_in_state("invoking")) == ["B", "C"]
        assert coordinator.tasks_in_state("failed") == []

    def test_error_tasks(self):
        coordinator = Coordinator(exit_tasks=["C"])
        coordinator.record_status("A", _status())
        coordinator.record_status("B", _status("failed", has_result=False, has_error=True))
        assert coordinator.error_tasks() == ["B"]

    def test_task_state_unknown_before_updates(self):
        coordinator = Coordinator(exit_tasks=["C"])
        assert coordinator.task_state("C") == "unknown"


class TestCoordinatorFailFast:
    def test_completes_successfully_when_exits_hold_results(self):
        coordinator = Coordinator(exit_tasks=["X", "Y"])
        coordinator.record_status("X", _status(), time=1.0)
        assert not coordinator.completed
        coordinator.record_status("Y", _status(), time=2.0)
        assert coordinator.completed and coordinator.succeeded
        assert coordinator.completion_time == 2.0

    def test_terminal_exit_error_fails_fast(self):
        fired = []
        coordinator = Coordinator(exit_tasks=["X", "Y"], on_complete=fired.append)
        coordinator.record_status("X", _status("failed", has_result=False, has_error=True), time=3.0)
        assert coordinator.completed and not coordinator.succeeded
        assert coordinator.completion_time == 3.0
        assert fired == [3.0]

    def test_adaptable_exit_error_does_not_fail_fast(self):
        coordinator = Coordinator(exit_tasks=["X"], adaptable_tasks={"X"})
        coordinator.record_status("X", _status("failed", has_result=False, has_error=True))
        assert not coordinator.completed

    def test_completion_is_sticky(self):
        coordinator = Coordinator(exit_tasks=["X"])
        coordinator.record_status("X", _status(), time=1.0)
        coordinator.record_status("X", _status("failed", has_result=False, has_error=True), time=9.0)
        assert coordinator.completed and coordinator.succeeded
        assert coordinator.completion_time == 1.0


class TestFailFastEndToEnd:
    """A workflow whose exit task holds ERROR completes as failed — it no
    longer blocks until timeout (threaded/asyncio) or drains the virtual
    event queue (simulated)."""

    def test_threaded_returns_before_timeout(self):
        start = time.monotonic()
        report = run_threaded(_failing_exit_diamond(), timeout=30.0)
        assert time.monotonic() - start < 10.0
        assert not report.succeeded
        assert report.tasks["merge"].error
        assert report.tasks["merge"].failures == 1

    def test_simulated_completes_as_failed(self):
        report = run_simulation(_failing_exit_diamond(), GinFlowConfig(nodes=5))
        assert not report.succeeded
        assert report.tasks["merge"].error

    def test_asyncio_returns_before_timeout(self):
        start = time.monotonic()
        report = run_asyncio(_failing_exit_diamond(), timeout=30.0)
        assert time.monotonic() - start < 10.0
        assert not report.succeeded


class TestReportParity:
    """Same workflow → identical task rows on every engine-backed runtime
    (modulo the timing and placement fields, which are runtime-specific)."""

    @staticmethod
    def _rows(report):
        return {
            name: (outcome.state, outcome.result, outcome.error, outcome.attempts, outcome.failures)
            for name, outcome in report.tasks.items()
        }

    @pytest.mark.parametrize("make_workflow", [
        lambda: diamond_workflow(3, 2),
        lambda: adaptive_diamond_workflow(2, 2),
    ], ids=["diamond", "adaptive-diamond"])
    def test_task_rows_identical_across_runtimes(self, make_workflow):
        simulated = run_simulation(make_workflow(), GinFlowConfig(nodes=5))
        threaded = run_threaded(make_workflow(), timeout=30.0)
        asyncio_report = run_asyncio(make_workflow(), timeout=30.0)
        assert simulated.succeeded and threaded.succeeded and asyncio_report.succeeded
        assert self._rows(simulated) == self._rows(threaded) == self._rows(asyncio_report)
        assert simulated.results == threaded.results == asyncio_report.results

    def test_service_level_failures_counted_in_every_runtime(self):
        # The adaptive diamond's trigger task fails its (single) invocation:
        # `failures` counts it identically everywhere (satellite: threaded
        # used to always report 0).
        for report in (
            run_simulation(adaptive_diamond_workflow(2, 2), GinFlowConfig(nodes=5)),
            run_threaded(adaptive_diamond_workflow(2, 2), timeout=30.0),
            run_asyncio(adaptive_diamond_workflow(2, 2), timeout=30.0),
        ):
            outcome = report.tasks["T_2_2"]
            assert outcome.error
            assert outcome.attempts == 1
            assert outcome.failures == 1


class TestDeliveredAccounting:
    def test_in_process_broker_counts_real_deliveries(self):
        broker = InProcessBroker(ACTIVEMQ_PROFILE)
        received = []
        broker.subscribe("t", received.append)
        broker.publish(Message(topic="t", kind=MessageKind.RESULT, sender="a", recipient="b"))
        broker.publish(Message(topic="nobody", kind=MessageKind.RESULT, sender="a", recipient="b"))
        assert broker.published_count() == 2
        assert broker.delivered_count() == 1  # no subscriber, no delivery
        assert len(received) == 1

    def test_threaded_report_uses_delivered_counter(self):
        report = run_threaded(diamond_workflow(2, 2), timeout=30.0)
        # every published message has exactly one subscriber here, and the
        # report field is the broker's real delivery counter (not an echo
        # of published_count)
        assert report.messages_delivered == report.messages_published
        assert report.messages_delivered > 0


class TestAsyncioRuntime:
    def test_registered_in_backends(self):
        assert "asyncio" in available_runtimes()

    def test_diamond_completes(self):
        report = run_asyncio(diamond_workflow(3, 2), timeout=30.0)
        assert report.succeeded
        assert report.results["merge"] == "merge-out"
        assert report.mode == "asyncio"
        assert report.messages_delivered == report.messages_published > 0

    def test_adaptive_diamond_completes(self):
        report = run_asyncio(adaptive_diamond_workflow(2, 2), timeout=30.0)
        assert report.succeeded
        assert report.adaptations_triggered == 1
        assert report.tasks["T_2_2"].error

    def test_real_python_services(self):
        registry = ServiceRegistry()
        registry.register_function("square", lambda value: value * value)
        registry.register_function("sum2", lambda a, b: a + b)
        workflow = Workflow("math")
        workflow.add_task(Task("A", "square", inputs=[3]))
        workflow.add_task(Task("B", "square", inputs=[4]))
        workflow.add_task(Task("C", "sum2"))
        workflow.add_dependency("A", "C")
        workflow.add_dependency("B", "C")
        config = GinFlowConfig(mode="asyncio", registry=registry)
        report = run_asyncio(workflow, config, timeout=30.0)
        assert report.succeeded
        assert report.results["C"] == 25

    def test_kafka_broker_mode(self):
        config = GinFlowConfig(mode="asyncio", broker="kafka")
        report = run_asyncio(diamond_workflow(2, 2), config, timeout=30.0)
        assert report.succeeded

    def test_async_services_run_concurrently(self):
        registry = ServiceRegistry()

        async def slow_identity(value):
            await asyncio.sleep(0.3)
            return value

        registry.register_function("slow", slow_identity)
        registry.register_function("sum2", lambda a, b: a + b)
        workflow = Workflow("async-math")
        workflow.add_task(Task("A", "slow", inputs=[10]))
        workflow.add_task(Task("B", "slow", inputs=[32]))
        workflow.add_task(Task("C", "sum2"))
        workflow.add_dependency("A", "C")
        workflow.add_dependency("B", "C")
        start = time.monotonic()
        report = run_asyncio(workflow, GinFlowConfig(mode="asyncio", registry=registry), timeout=30.0)
        elapsed = time.monotonic() - start
        assert report.succeeded
        assert report.results["C"] == 42
        # both 0.3 s awaits overlapped on the one loop (serial would be ≥0.6)
        assert elapsed < 0.55

    def test_async_service_failure_becomes_task_error(self):
        registry = ServiceRegistry()

        async def broken():
            raise RuntimeError("boom")

        registry.register_function("broken", broken)
        workflow = Workflow("async-fail")
        workflow.add_task(Task("A", "broken"))
        report = run_asyncio(workflow, GinFlowConfig(mode="asyncio", registry=registry), timeout=30.0)
        assert not report.succeeded
        assert report.tasks["A"].error
        assert report.tasks["A"].failures == 1

    def test_facade_mode_dispatch(self):
        report = GinFlow().run(diamond_workflow(2, 2), mode="asyncio")
        assert report.succeeded and report.mode == "asyncio"

    def test_run_async_inside_event_loop(self):
        async def main():
            return await AsyncioRun(diamond_workflow(2, 1)).run_async(timeout=30.0)

        report = asyncio.run(main())
        assert report.succeeded

    def test_sweep_over_asyncio_runtime(self):
        from repro.experiments import ParameterGrid

        sweep = GinFlow().sweep(
            lambda: diamond_workflow(2, 1),
            ParameterGrid({"broker": ["activemq", "kafka"]}),
            mode="asyncio",
            name="asyncio-sweep",
        )
        assert sweep.succeeded
        assert len(sweep.rows) == 2
        assert {row["broker"] for row in sweep.rows} == {"activemq", "kafka"}


class TestClockSeam:
    def test_virtual_clock_reads_the_simulator(self):
        sim = Simulator()
        clock = VirtualClock(sim)
        assert clock.now() == 0.0
        sim.call_in(5.0, lambda: None)
        sim.run()
        assert clock.now() == 5.0

    def test_monotonic_clock_is_non_decreasing(self):
        clock = MonotonicClock()
        first = clock.now()
        assert clock.now() >= first
