"""Regression tests for the three runtime-layer bugfixes of PR 4.

* ADAPT payload coercion: live delivery (``EnactmentEngine.deliver``) and
  log-replay recovery (``recovery.replay_messages``) must apply the *same*
  coercion, so a replayed agent reaches the exact state of the agent it
  replaces (Section IV-B).
* Silent invocation loss in the asyncio runtime: a service whose ``invoke``
  *raises* (instead of returning a failed result) must surface as a failed
  task, not hang the run until timeout.
* Timeout swallowing: a run cut off by its wall-clock timeout must report
  ``timed_out=True`` and ``succeeded=False`` in both the asyncio and the
  threaded runtimes.
"""

from __future__ import annotations

import time

from repro.agents import AgentCore
from repro.agents.recovery import rebuild_agent
from repro.hoclflow.translator import encode_workflow
from repro.messaging import InProcessBroker, Message, MessageKind, adapt_count, agent_topic
from repro.runtime import GinFlowConfig, run_asyncio, run_threaded
from repro.runtime.enactment import AgentHost, EnactmentEngine, MonotonicClock
from repro.services import InvocationContext, InvocationResult, Service, ServiceRegistry
from repro.workflow import Task, Workflow, adaptive_diamond_workflow


class TestAdaptCoercionParity:
    def test_adapt_count_coercion(self):
        assert adapt_count(None) == 1  # bare marker message
        assert adapt_count(0) == 0
        assert adapt_count(2) == 2
        assert adapt_count("3") == 3

    def _adapt_message(self, task: str, payload) -> Message:
        return Message(
            topic=agent_topic(task),
            kind=MessageKind.ADAPT,
            sender="tester",
            recipient=task,
            payload=payload,
        )

    def test_live_delivery_and_replay_reach_the_same_state(self):
        # the adaptation-trigger task of the adaptive diamond accepts ADAPT
        workflow = adaptive_diamond_workflow(2, 2)
        encoding = encode_workflow(workflow)
        task_name = next(iter(encoding.tasks))
        task_encoding = encoding.tasks[task_name]

        for payload in (None, 0, 1, 2, "2"):
            config = GinFlowConfig(mode="threaded")
            engine = EnactmentEngine(
                config=config,
                encoding=encoding,
                clock=MonotonicClock(),
                transport=InProcessBroker(config.broker_profile()),
                invoker=lambda host, prepared: None,
            )
            live = engine.add_host(
                AgentHost(encoding=task_encoding, core=AgentCore(task_encoding))
            )
            engine.boot(live)
            message = self._adapt_message(task_name, payload)
            engine.deliver(live, message)

            replayed_core, _actions = rebuild_agent(task_encoding, [message])
            assert replayed_core.solution == live.core.solution, (
                f"replayed agent diverged from live agent for payload {payload!r}"
            )
            assert replayed_core.adaptations_applied == live.core.adaptations_applied


class _RaisingService(Service):
    """A service whose ``invoke`` raises — modelling broken service wiring.

    ``PythonService`` converts callable exceptions into failed results, so
    the only way ``PreparedInvocation.invoke`` can raise is a bug at this
    level; the runtime must still convert it into a failed task instead of
    losing the invocation.
    """

    def invoke(self, parameters: list, context: InvocationContext) -> InvocationResult:
        raise RuntimeError("service wiring exploded")


class TestInvocationLoss:
    def _check(self, runner, mode):
        registry = ServiceRegistry()
        registry.register(_RaisingService("broken"))
        workflow = Workflow("raising")
        workflow.add_task(Task("A", "broken"))
        config = GinFlowConfig(mode=mode, registry=registry)
        start = time.monotonic()
        report = runner(workflow, config, timeout=10.0)
        elapsed = time.monotonic() - start
        # the failure is fed back into the chemistry: no hang-until-timeout
        assert elapsed < 5.0
        assert not report.succeeded
        assert not report.timed_out
        assert report.tasks["A"].error
        assert report.tasks["A"].failures == 1

    def test_raising_invoke_fails_the_task_instead_of_hanging_asyncio(self):
        self._check(run_asyncio, "asyncio")

    def test_raising_invoke_fails_the_task_instead_of_hanging_threaded(self):
        self._check(run_threaded, "threaded")


class TestTimeoutSurfacing:
    def _stuck_workflow(self, registry: ServiceRegistry, blocking: bool) -> Workflow:
        if blocking:
            registry.register_function("stuck", lambda: time.sleep(30.0))
        else:

            async def stuck():  # never finishes within the timeout
                import asyncio

                await asyncio.sleep(30.0)

            registry.register_function("stuck", stuck)
        workflow = Workflow("stuck")
        workflow.add_task(Task("A", "stuck"))
        return workflow

    def test_asyncio_timeout_is_reported(self):
        registry = ServiceRegistry()
        workflow = self._stuck_workflow(registry, blocking=False)
        report = run_asyncio(
            workflow, GinFlowConfig(mode="asyncio", registry=registry), timeout=0.2
        )
        assert report.timed_out
        assert not report.succeeded

    def test_threaded_timeout_is_reported(self):
        registry = ServiceRegistry()
        workflow = self._stuck_workflow(registry, blocking=True)
        report = run_threaded(
            workflow, GinFlowConfig(mode="threaded", registry=registry), timeout=0.2
        )
        assert report.timed_out
        assert not report.succeeded

    def test_completed_run_is_not_marked_timed_out(self):
        workflow = Workflow("quick")
        workflow.add_task(Task("A", "anything"))
        report = run_threaded(workflow, GinFlowConfig(mode="threaded"), timeout=10.0)
        assert report.succeeded
        assert not report.timed_out
        assert report.summary()["timed_out"] is False
