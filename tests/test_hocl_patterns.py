"""Unit tests for patterns and multiset-level matching."""

import pytest

from repro.hocl import (
    IntAtom,
    Literal,
    Multiset,
    Omega,
    PatternError,
    Rule,
    RulePattern,
    SolutionPattern,
    Subsolution,
    Symbol,
    SymbolPattern,
    TupleAtom,
    TuplePattern,
    Var,
    count_matches,
    find_first_match,
    find_matches,
)


def matches(pattern, atom, bindings=None):
    return list(pattern.match(atom, bindings or {}))


class TestVar:
    def test_binds_any_atom(self):
        result = matches(Var("x"), IntAtom(3))
        assert result == [{"x": IntAtom(3)}]

    def test_kind_constraint(self):
        assert matches(Var("x", kind="int"), IntAtom(1))
        assert not matches(Var("x", kind="int"), Symbol("A"))

    def test_number_kind_accepts_floats_and_ints(self):
        assert matches(Var("x", kind="number"), IntAtom(1))
        assert not matches(Var("x", kind="number"), Symbol("A"))

    def test_consistent_rebinding(self):
        # same variable must match equal atoms
        assert matches(Var("x"), IntAtom(1), {"x": IntAtom(1)})
        assert not matches(Var("x"), IntAtom(2), {"x": IntAtom(1)})

    def test_empty_name_rejected(self):
        with pytest.raises(PatternError):
            Var("")


class TestLiteralAndSymbol:
    def test_literal_matches_equal(self):
        assert matches(Literal(3), IntAtom(3))

    def test_literal_rejects_different(self):
        assert not matches(Literal(3), IntAtom(4))

    def test_symbol_pattern(self):
        assert matches(SymbolPattern("ADAPT"), Symbol("ADAPT"))
        assert not matches(SymbolPattern("ADAPT"), Symbol("ERROR"))


class TestOmega:
    def test_cannot_match_single_atom(self):
        with pytest.raises(PatternError):
            list(Omega("w").match(IntAtom(1), {}))

    def test_empty_name_rejected(self):
        with pytest.raises(PatternError):
            Omega("")


class TestTuplePattern:
    def test_positional_match(self):
        pattern = TuplePattern(SymbolPattern("SRC"), Var("body"))
        atom = TupleAtom([Symbol("SRC"), Subsolution([1])])
        result = matches(pattern, atom)
        assert result[0]["body"] == Subsolution([1])

    def test_arity_mismatch(self):
        pattern = TuplePattern(Var("a"), Var("b"))
        assert not matches(pattern, TupleAtom([1]))

    def test_rest_captures_remaining(self):
        pattern = TuplePattern(SymbolPattern("MVSRC"), rest=Omega("rest"))
        atom = TupleAtom([Symbol("MVSRC"), Symbol("T4"), Symbol("T2")])
        result = matches(pattern, atom)
        assert result[0]["rest"] == [Symbol("T4"), Symbol("T2")]

    def test_rejects_non_tuple(self):
        assert not matches(TuplePattern(Var("a")), IntAtom(1))

    def test_omega_in_elements_rejected(self):
        with pytest.raises(PatternError):
            TuplePattern(Omega("w"))


class TestSolutionPattern:
    def test_exact_match_without_rest(self):
        pattern = SolutionPattern(Literal(1), Literal(2))
        assert matches(pattern, Subsolution([2, 1]))  # order-insensitive
        assert not matches(pattern, Subsolution([1, 2, 3]))

    def test_empty_pattern_matches_only_empty(self):
        assert matches(SolutionPattern(), Subsolution())
        assert not matches(SolutionPattern(), Subsolution([1]))

    def test_rest_captures_unmatched(self):
        pattern = SolutionPattern(Literal(1), rest=Omega("w"))
        result = matches(pattern, Subsolution([1, 2, 3]))
        assert sorted(a.value for a in result[0]["w"]) == [2, 3]

    def test_positional_omega(self):
        pattern = SolutionPattern(Literal(1), Omega("w"))
        result = matches(pattern, Subsolution([1, 5]))
        assert result[0]["w"] == [IntAtom(5)]

    def test_two_omegas_rejected(self):
        with pytest.raises(PatternError):
            SolutionPattern(Omega("a"), Omega("b"))

    def test_distinct_atoms_per_element(self):
        # two element patterns cannot match the same atom occurrence
        pattern = SolutionPattern(Var("x", kind="int"), Var("y", kind="int"))
        assert not matches(pattern, Subsolution([1]))
        assert matches(pattern, Subsolution([1, 2]))

    def test_rejects_non_solution(self):
        assert not matches(SolutionPattern(), IntAtom(1))


class TestRulePattern:
    def test_matches_rule_by_name(self):
        rule = Rule("max", [Var("x")], [])
        assert matches(RulePattern(name="max"), rule)
        assert not matches(RulePattern(name="other"), rule)

    def test_binds_rule(self):
        rule = Rule("max", [Var("x")], [])
        result = matches(RulePattern(bind_as="r"), rule)
        assert result[0]["r"] is rule

    def test_rejects_non_rule(self):
        assert not matches(RulePattern(), IntAtom(1))


class TestMultisetMatching:
    def test_find_matches_distinct_atoms(self):
        solution = Multiset([1, 2])
        found = list(find_matches([Var("x", kind="int"), Var("y", kind="int")], solution))
        # 2 permutations
        assert len(found) == 2

    def test_consumed_identity(self):
        solution = Multiset([1, 2])
        match = find_first_match([Literal(2)], solution)
        assert match.consumed[0] is solution.atoms()[1]

    def test_condition_filters(self):
        solution = Multiset([1, 2])
        found = list(
            find_matches(
                [Var("x", kind="int"), Var("y", kind="int")],
                solution,
                condition=lambda b: b["x"].value > b["y"].value,
            )
        )
        assert len(found) == 1

    def test_initial_bindings_respected(self):
        solution = Multiset([1, 2])
        match = find_first_match([Var("x")], solution, initial_bindings={"x": IntAtom(2)})
        assert match.bindings["x"] == IntAtom(2)

    def test_count_matches(self):
        assert count_matches([Var("x", kind="int")], Multiset([1, 2, 3])) == 3

    def test_no_match_returns_none(self):
        assert find_first_match([Literal(9)], Multiset([1])) is None

    def test_cross_pattern_variable_consistency(self):
        # gw_pass-style consistency: same variable in two patterns
        solution = Multiset(
            [
                TupleAtom([Symbol("T1"), Symbol("RES")]),
                TupleAtom([Symbol("T2"), Symbol("T1")]),
            ]
        )
        patterns = [
            TuplePattern(Var("ti", kind="symbol"), SymbolPattern("RES")),
            TuplePattern(Var("tj", kind="symbol"), Var("ti", kind="symbol")),
        ]
        match = find_first_match(patterns, solution)
        assert match is not None
        assert match.bindings["ti"] == Symbol("T1")
        assert match.bindings["tj"] == Symbol("T2")
