"""Tests for the pluggable backend registry and the immutable configuration.

The end-to-end tests register third-party backends exclusively through the
public ``repro`` facade and run workflows on them — no file under
``src/repro/runtime/`` (or anywhere else in the engine) is modified.
"""

import dataclasses

import pytest

from repro import (
    BackendError,
    BrokerProfile,
    FailureModel,
    GinFlow,
    GinFlowConfig,
    available_brokers,
    available_clusters,
    available_executors,
    available_runtimes,
    diamond_workflow,
    register_broker,
    register_cluster,
    register_executor,
)
from repro.runtime.backends import BackendRegistry, registry


@pytest.fixture()
def scratch_backend():
    """Unregister any backend the test registered, even on failure."""
    registered: list[tuple[str, str]] = []

    def _track(kind: str, name: str) -> None:
        registered.append((kind, name))

    yield _track
    for kind, name in registered:
        registry.unregister(kind, name)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(available_runtimes()) >= {"simulated", "threaded", "centralized"}
        assert set(available_executors()) >= {"ssh", "mesos"}
        assert set(available_brokers()) >= {"activemq", "kafka"}
        assert set(available_clusters()) >= {"grid5000", "uniform"}

    def test_duplicate_registration_rejected(self):
        scratch = BackendRegistry()
        scratch.register("broker", "x", lambda config: None)
        with pytest.raises(BackendError):
            scratch.register("broker", "x", lambda config: None)
        # replace=True overrides instead
        scratch.register("broker", "x", lambda config: "second", replace=True)
        assert scratch.get("broker", "x").build(None) == "second"

    def test_unknown_name_lists_alternatives(self):
        scratch = BackendRegistry()
        scratch.register("runtime", "only", lambda *a, **k: None)
        with pytest.raises(BackendError, match="only"):
            scratch.get("runtime", "nope")

    def test_unknown_kind_rejected(self):
        scratch = BackendRegistry()
        with pytest.raises(BackendError):
            scratch.register("scheduler", "x", lambda: None)
        with pytest.raises(BackendError):
            scratch.names("scheduler")

    def test_decorator_form_and_capabilities(self):
        scratch = BackendRegistry()

        @scratch.register("cluster", "toy", capabilities={"max_nodes": 3})
        def build_toy(config):
            """A toy preset."""
            return "cluster"

        backend = scratch.get("cluster", "toy")
        assert backend.capability("max_nodes") == 3
        assert backend.capability("absent", "fallback") == "fallback"
        assert backend.description == "A toy preset."
        assert backend.build(None) == "cluster"
        assert scratch.has("cluster", "toy") and not scratch.has("cluster", "other")

    def test_derived_views_follow_registrations(self, scratch_backend):
        from repro.runtime import BROKERS

        assert "transient" not in BROKERS
        register_broker("transient", lambda config: BrokerProfile("transient", 0.001, 0.01, False))
        scratch_backend("broker", "transient")
        from repro.runtime import BROKERS as refreshed

        assert "transient" in refreshed
        assert "transient" in available_brokers()


class TestConfigValidation:
    def test_invalid_backend_names(self):
        with pytest.raises(ValueError):
            GinFlowConfig(mode="quantum")
        with pytest.raises(ValueError):
            GinFlowConfig(executor="ec2")
        with pytest.raises(ValueError):
            GinFlowConfig(broker="rabbitmq")
        with pytest.raises(ValueError):
            GinFlowConfig(cluster_preset="cloud")

    def test_failures_require_persistent_broker(self):
        with pytest.raises(ValueError, match="persistent"):
            GinFlowConfig(broker="activemq", failures=FailureModel(probability=0.5))
        GinFlowConfig(broker="kafka", failures=FailureModel(probability=0.5))

    def test_config_is_immutable(self):
        config = GinFlowConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.nodes = 3
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.broker = "kafka"

    def test_with_overrides_validates(self):
        config = GinFlowConfig()
        with pytest.raises(ValueError):
            config.with_overrides(nodes=0)
        with pytest.raises(ValueError):
            config.with_overrides(broker="rabbitmq")
        with pytest.raises(ValueError, match="unknown configuration field"):
            config.with_overrides(nodez=5)

    def test_with_overrides_returns_new_instance(self):
        config = GinFlowConfig()
        other = config.with_overrides(broker="kafka")
        assert config.broker == "activemq" and other.broker == "kafka"

    def test_registering_services_does_not_mutate_config(self):
        ginflow = GinFlow()
        assert ginflow.config.registry is None
        ginflow.register_service("noop", lambda: None)
        # the config stays untouched; the services live in an explicit slot
        assert ginflow.config.registry is None
        assert ginflow.registry.knows("noop")

    def test_explicit_registry_wins_over_config_registry(self):
        from repro import ServiceRegistry
        from repro.workflow import Task, Workflow

        config_registry = ServiceRegistry()
        explicit = ServiceRegistry()
        ginflow = GinFlow(GinFlowConfig(registry=config_registry), registry=explicit)
        ginflow.register_service("double", lambda value: value * 2)
        assert explicit.knows("double") and not config_registry.knows("double")

        workflow = Workflow("w")
        workflow.add_task(Task("A", "double", inputs=[21]))
        report = ginflow.run(workflow, mode="centralized")
        assert report.results["A"] == 42

    def test_builtin_loading_is_thread_safe(self):
        import subprocess
        import sys

        # fresh interpreter: first-ever backend lookups race across threads
        from pathlib import Path

        src = str(Path(__file__).resolve().parent.parent / "src")
        script = (
            f"import sys; sys.path.insert(0, {src!r})\n"
            "import threading\n"
            "errors = []\n"
            "def build():\n"
            "    try:\n"
            "        from repro.runtime.config import GinFlowConfig\n"
            "        GinFlowConfig()\n"
            "    except Exception as exc:\n"
            "        errors.append(exc)\n"
            "threads = [threading.Thread(target=build) for _ in range(8)]\n"
            "[t.start() for t in threads]; [t.join() for t in threads]\n"
            "assert not errors, errors\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, cwd="."
        )
        assert result.returncode == 0, result.stderr


class TestThirdPartyBackends:
    def test_inmemory_persistent_broker_end_to_end(self, scratch_backend):
        """A broker registered via the public API runs workflows (and even
        failure injection, thanks to its persistence) on every runtime."""

        @register_broker(
            "inmemory",
            capabilities={"persistent": True},
            description="zero-cost persistent broker",
        )
        def _inmemory_profile(config) -> BrokerProfile:
            return BrokerProfile("inmemory", per_message_time=0.001, delivery_overhead=0.01, persistent=True)

        scratch_backend("broker", "inmemory")

        assert "inmemory" in available_brokers()
        config = GinFlowConfig(broker="inmemory", nodes=5)
        assert config.broker_profile().persistent

        simulated = GinFlow().run(diamond_workflow(3, 2, duration=0.1), broker="inmemory", nodes=5)
        assert simulated.succeeded and simulated.broker == "inmemory"

        threaded = GinFlow().run(diamond_workflow(2, 2), mode="threaded", broker="inmemory")
        assert threaded.succeeded

        # persistence makes the recovery mechanism available
        injected = GinFlow().run(
            diamond_workflow(3, 2, duration=5.0),
            broker="inmemory",
            nodes=5,
            failures=FailureModel(probability=0.5, delay=0.0),
            seed=3,
        )
        assert injected.succeeded
        assert injected.recoveries == injected.failures_injected

    def test_third_party_cluster_preset(self, scratch_backend):
        from repro.cluster import uniform_cluster

        @register_cluster("tiny", capabilities={"max_nodes": 2})
        def _tiny(config):
            return uniform_cluster(min(config.nodes, 2), cores_per_node=4)

        scratch_backend("cluster", "tiny")

        report = GinFlow().run(diamond_workflow(2, 2, duration=0.1), cluster_preset="tiny", nodes=2)
        assert report.succeeded
        assert len(GinFlowConfig(cluster_preset="tiny", nodes=7).build_cluster()) == 2

    def test_third_party_executor(self, scratch_backend):
        from repro.executors import SSHExecutor

        class EagerSSH(SSHExecutor):
            name = "eager-ssh"

        @register_executor("eager-ssh")
        def _eager(config):
            return EagerSSH(connection_overhead=0.0, base_overhead=0.1)

        scratch_backend("executor", "eager-ssh")

        fast = GinFlow().run(diamond_workflow(2, 2, duration=0.1), executor="eager-ssh", nodes=5)
        slow = GinFlow().run(diamond_workflow(2, 2, duration=0.1), executor="ssh", nodes=5)
        assert fast.succeeded
        assert fast.deployment_time < slow.deployment_time

    def test_cluster_preset_can_supply_network_model(self, scratch_backend):
        from repro.cluster import NetworkModel, uniform_cluster

        slow_network = NetworkModel(latency=0.1, bandwidth=1_000_000.0, jitter=0.0)

        @register_cluster("slow-lan", capabilities={"network": slow_network})
        def _slow_lan(config):
            return uniform_cluster(config.nodes)

        scratch_backend("cluster", "slow-lan")

        assert GinFlowConfig(cluster_preset="slow-lan", nodes=2).build_network() is slow_network
        # explicit network still wins; other presets keep the Grid'5000 default
        explicit = NetworkModel(latency=0.2, bandwidth=1.0, jitter=0.0)
        assert GinFlowConfig(cluster_preset="slow-lan", nodes=2, network=explicit).build_network() is explicit
        assert GinFlowConfig(nodes=2).build_network().latency == 0.0005

    def test_uniform_preset_scales_past_grid5000(self):
        # the Grid'5000 preset caps at 25 nodes; the uniform preset does not
        with pytest.raises(ValueError):
            GinFlowConfig(nodes=40).build_cluster()
        cluster = GinFlowConfig(cluster_preset="uniform", nodes=40).build_cluster()
        assert len(cluster) == 40
