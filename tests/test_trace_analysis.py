"""Tests for the dynamic analyzer behind ``ginflow audit``.

Mirror image of test_analysis.py for the dynamic check families: each trace
/ run / plan check gets a deliberately-violating fixture (a never-firing
rule, a broken adaptation plan, a tampered RunReport) that must produce the
expected finding, and every shipped scenario family must audit clean at
``--fail-on error``.
"""

import json

import pytest

from repro.analysis import (
    Finding,
    Severity,
    audit_all_scenarios,
    audit_plans,
    audit_reduction,
    audit_run,
    audit_scenario,
    audit_workflow,
    available_checks,
    register_check,
    registry,
)
from repro.agents.coordinator import TimelineEvent
from repro.analysis.obs_checks import ObsScope, reduction_phase_totals
from repro.analysis.plan_checks import PlanScope
from repro.analysis.trace import enactment_rules
from repro.analysis.trace_checks import conditional_rule_names
from repro.obs import EventRecord, SpanRecord
from repro.cli import main
from repro.hocl import Ref, Symbol, Var, replace
from repro.hocl.engine import ReductionReport
from repro.hoclflow import keywords as kw
from repro.hoclflow.adaptation import build_plan
from repro.hoclflow.translator import encode_workflow
from repro.runtime import GinFlow, GinFlowConfig
from repro.runtime.results import RunReport, TaskOutcome
from repro.scenarios import available_scenarios, register_scenario
from repro.scenarios.registry import registry as scenario_registry
from repro.workflow import Task, Workflow, adaptive_diamond_workflow, diamond_workflow


def findings_for(report, check):
    return report.by_check(check)


def no_handoff_workflow(size=2, seed=0):
    """Two disconnected tasks: every agent registers ``gw_pass`` but no task
    ever has a destination, so the rule never fires anywhere — the seeded
    never-fired fixture."""
    workflow = Workflow(name="no-handoff")
    for index in range(max(2, size)):
        workflow.add_task(Task(name=f"t{index}", service="s", duration=0.05))
    return workflow


@pytest.fixture()
def scratch_scenario():
    """Register throwaway scenarios and tear them down afterwards."""
    names = []

    def _register(name, factory, **kwargs):
        names.append(name)
        register_scenario(name, factory, **kwargs)

    yield _register
    for name in names:
        scenario_registry.unregister(name)


def simulated_run(workflow, seed=1, **overrides):
    return GinFlow(GinFlowConfig(mode="simulated", nodes=5, seed=seed)).run(
        workflow, timeout=120.0, **overrides
    )


# ------------------------------------------------------------- fire counters
class TestFireCounters:
    def test_run_report_carries_per_rule_fires(self):
        run = simulated_run(diamond_workflow(2, 2, duration=0.05))
        fires = run.extra["rule_fires"]
        assert run.succeeded
        assert sum(fires.values()) == run.reduction_reactions
        assert fires["gw_setup"] > 0 and fires["gw_call"] > 0 and fires["gw_pass"] > 0
        registered = run.extra["rules_registered"]
        assert set(fires) <= set(registered)

    def test_reduction_report_merge_accumulates_fires(self):
        left = ReductionReport(reactions=2, rule_fires={"a": 2})
        right = ReductionReport(reactions=3, rule_fires={"a": 1, "b": 2})
        left.merge(right)
        assert left.rule_fires == {"a": 3, "b": 2}
        assert sum(left.rule_fires.values()) == left.reactions == 5


# ------------------------------------------------------------- trace checks
class TestTraceChecks:
    def test_never_fired_rule_is_an_error(self):
        trace = ReductionReport(reactions=1, rule_fires={"fires": 1}, inert=True)
        report = audit_reduction(trace, rules=["fires", "silent"])
        (finding,) = findings_for(report, "trace-rule-never-fired")
        assert finding.severity is Severity.ERROR
        assert finding.subject == "silent"

    def test_conditional_rule_downgrades_to_info(self):
        adaptation = replace("on_adapt", [Symbol(kw.ADAPT)], [])
        plain = replace("plain", [Var("x")], [Ref("x")])
        assert conditional_rule_names([adaptation, plain]) == frozenset({"on_adapt"})
        trace = ReductionReport(reactions=1, rule_fires={"plain": 1})
        report = audit_reduction(trace, rules=[adaptation, plain])
        (finding,) = findings_for(report, "trace-rule-never-fired")
        assert finding.severity is Severity.INFO
        assert finding.subject == "on_adapt"
        assert report.ok(Severity.WARNING)

    def test_unknown_fired_rule_is_an_error(self):
        trace = ReductionReport(reactions=3, rule_fires={"known": 1, "ghost": 2})
        report = audit_reduction(trace, rules=["known"])
        (finding,) = findings_for(report, "trace-unknown-rule")
        assert finding.severity is Severity.ERROR
        assert finding.subject == "ghost"

    def test_unknown_rule_skipped_without_a_universe(self):
        trace = ReductionReport(reactions=2, rule_fires={"whatever": 2})
        report = audit_reduction(trace)  # no registered rules
        assert not findings_for(report, "trace-unknown-rule")
        assert not findings_for(report, "trace-rule-never-fired")

    def test_non_inert_trace_is_an_error(self):
        report = audit_reduction(ReductionReport(inert=False))
        (finding,) = findings_for(report, "trace-non-inert")
        assert finding.severity is Severity.ERROR
        assert "step limit" in finding.message

    def test_fire_counter_sum_must_match_reactions(self):
        trace = ReductionReport(reactions=5, rule_fires={"a": 1})
        report = audit_reduction(trace)
        (finding,) = findings_for(report, "trace-accounting")
        assert "1" in finding.message and "5" in finding.message


# --------------------------------------------------------------- run checks
class TestRunChecks:
    def test_lost_message_is_an_error(self):
        run = RunReport(succeeded=True, messages_published=5, messages_delivered=4)
        (finding,) = findings_for(audit_run(run), "run-message-accounting")
        assert finding.severity is Severity.ERROR
        assert "5" in finding.message and "4" in finding.message

    def test_missing_broker_counters_are_skipped(self):
        run = RunReport(succeeded=True)  # centralized runs report no counters
        assert not findings_for(audit_run(run), "run-message-accounting")

    def test_task_bookkeeping_contradictions(self):
        run = RunReport(succeeded=True)
        run.tasks["a"] = TaskOutcome(task="a", state="completed", result=None, attempts=1)
        run.tasks["b"] = TaskOutcome(task="b", state="failed", error=False, attempts=1)
        run.tasks["c"] = TaskOutcome(
            task="c", state="completed", result=1, attempts=1, failures=3
        )
        run.tasks["d"] = TaskOutcome(
            task="d", state="completed", result=1, attempts=1, started_at=2.0, finished_at=1.0
        )
        findings = findings_for(audit_run(run), "run-task-bookkeeping")
        assert {f.subject for f in findings} == {"a", "b", "c", "d"}
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_succeeded_and_timed_out_contradict(self):
        run = RunReport(succeeded=True, timed_out=True)
        (finding,) = findings_for(audit_run(run), "run-exit-terminal")
        assert "timed_out" in finding.message

    def test_succeeded_run_needs_exit_results(self):
        run = RunReport(succeeded=True)
        run.tasks["sink"] = TaskOutcome(task="sink", state="completed", result=None, attempts=1)
        report = audit_run(run, exit_tasks=["sink", "missing"])
        subjects = {f.subject for f in findings_for(report, "run-exit-terminal")}
        assert subjects == {"sink", "missing"}

    def test_timeline_must_not_go_backwards(self):
        run = RunReport(succeeded=True)
        run.timeline = [
            TimelineEvent(time=2.0, task="a", event="ready"),
            TimelineEvent(time=1.0, task="a", event="invoking"),
        ]
        (finding,) = findings_for(audit_run(run), "run-status-ordering")
        assert "backwards" in finding.message

    def test_illegal_state_succession(self):
        run = RunReport(succeeded=True)
        run.timeline = [
            TimelineEvent(time=1.0, task="a", event="completed"),
            TimelineEvent(time=2.0, task="a", event="invoking"),
        ]
        (finding,) = findings_for(audit_run(run), "run-status-ordering")
        assert "'completed' -> 'invoking'" in finding.message

    def test_recovery_resets_the_state_machine(self):
        run = RunReport(succeeded=True)
        run.timeline = [
            TimelineEvent(time=1.0, task="a", event="invoking"),
            TimelineEvent(time=2.0, task="a", event="failed"),
            TimelineEvent(time=3.0, task="a", event="recovery"),
            TimelineEvent(time=4.0, task="a", event="invoking"),
            TimelineEvent(time=5.0, task="a", event="completed"),
        ]
        assert not findings_for(audit_run(run), "run-status-ordering")

    def test_reduction_aggregates_must_agree(self):
        run = RunReport(succeeded=True, reduction_reactions=10, reduction_match_attempts=50)
        run.extra["rule_fires"] = {"gw_setup": 4, "gw_call": 4}
        (finding,) = findings_for(audit_run(run), "run-reduction-accounting")
        assert "8" in finding.message and "10" in finding.message

    def test_more_reactions_than_match_attempts_is_impossible(self):
        run = RunReport(succeeded=True, reduction_reactions=10, reduction_match_attempts=3)
        (finding,) = findings_for(audit_run(run), "run-reduction-accounting")
        assert "match attempts" in finding.message


# --------------------------------------------- tampered real-run artifacts
class TestTamperedRunReport:
    @pytest.fixture(scope="class")
    def clean_run(self):
        return simulated_run(diamond_workflow(2, 2, duration=0.05))

    def test_clean_run_audits_clean(self, clean_run):
        report = audit_run(clean_run, exit_tasks=["merge"])
        assert report.ok(Severity.WARNING), [f.message for f in report]

    def test_tampered_delivery_counter_is_caught(self, clean_run):
        import copy

        run = copy.deepcopy(clean_run)
        run.messages_delivered += 1
        assert findings_for(audit_run(run), "run-message-accounting")

    def test_tampered_reaction_total_is_caught(self, clean_run):
        import copy

        run = copy.deepcopy(clean_run)
        run.reduction_reactions += 1
        assert findings_for(audit_run(run), "run-reduction-accounting")

    def test_reversed_timeline_is_caught(self, clean_run):
        import copy

        run = copy.deepcopy(clean_run)
        run.timeline = list(reversed(run.timeline))
        assert findings_for(audit_run(run), "run-status-ordering")


# ----------------------------------------------------------------- obs checks
def run_obs_check(check_id, scope):
    checks = {check.id: check for check in available_checks()}
    return list(checks[check_id].run(scope))


class TestObsChecks:
    def test_span_ending_before_start_is_flagged(self):
        scope = ObsScope(
            label="fixture",
            spans=(SpanRecord(name="agent.boot", track="a", start=2.0, end=1.0),),
        )
        (finding,) = run_obs_check("obs-span-unclosed", scope)
        assert finding.severity is Severity.ERROR
        assert "before it starts" in finding.message

    def test_orphan_reduction_span_is_flagged(self):
        # track "a" has a stimulus window, but the match span lives outside it
        scope = ObsScope(
            label="fixture",
            spans=(
                SpanRecord(name="agent.boot", track="a", start=0.0, end=1.0),
                SpanRecord(name="reduction.match", track="a", start=2.0, end=3.0),
            ),
        )
        (finding,) = run_obs_check("obs-span-unclosed", scope)
        assert finding.subject == "reduction.match"
        assert "not nested" in finding.message

    def test_stimulus_free_tracks_skip_the_nesting_check(self):
        # the centralized track records reduction spans with no agent spans
        scope = ObsScope(
            label="fixture",
            spans=(SpanRecord(name="reduction.match", track="centralized", start=0.0, end=1.0),),
        )
        assert run_obs_check("obs-span-unclosed", scope) == []

    def test_broker_event_counts_must_match_report(self):
        run = RunReport(succeeded=True, messages_published=2, messages_delivered=3)
        scope = ObsScope(
            label="fixture",
            events=(
                EventRecord(name="broker.publish", track="broker", time=0.1),
                EventRecord(name="broker.deliver", track="broker", time=0.2, attrs={"count": 2}),
            ),
            report=run,
        )
        findings = run_obs_check("obs-broker-accounting", scope)
        assert len(findings) == 2
        assert all(f.severity is Severity.ERROR for f in findings)
        assert any("broker.publish" in f.message for f in findings)
        assert any("broker.deliver" in f.message for f in findings)

    def test_broker_check_skips_without_report_or_events(self):
        events = (EventRecord(name="broker.publish", track="broker", time=0.1),)
        assert run_obs_check("obs-broker-accounting", ObsScope(label="f", events=events)) == []
        run = RunReport(succeeded=True, messages_published=5)
        assert run_obs_check("obs-broker-accounting", ObsScope(label="f", report=run)) == []

    def test_reduction_totals_must_reconcile(self):
        run = RunReport(succeeded=True)
        run.extra["reduction_timings"] = {"match": 0.5, "rewrite": 0.0, "patch": 0.0, "index": 0.0}
        spans = (SpanRecord(name="reduction.match", track="a", start=0.0, end=0.3),)
        (finding,) = run_obs_check(
            "obs-reduction-reconcile", ObsScope(label="f", spans=spans, report=run)
        )
        assert finding.subject == "match"
        assert "0.300000000" in finding.message and "0.500000000" in finding.message

    def test_reconciling_totals_are_clean(self):
        spans = (
            SpanRecord(name="reduction.match", track="a", start=0.0, end=0.3),
            SpanRecord(
                name="reduction.rewrite", track="a", start=0.3, end=0.5,
                attrs={"index_seconds": 0.1},
            ),
        )
        totals = reduction_phase_totals(spans)
        run = RunReport(succeeded=True)
        run.extra["reduction_timings"] = totals
        scope = ObsScope(label="f", spans=spans, report=run)
        assert run_obs_check("obs-reduction-reconcile", scope) == []
        assert totals == pytest.approx(
            {"match": 0.3, "rewrite": 0.2, "patch": 0.0, "index": 0.1}
        )

    def test_reconcile_skips_without_timings_or_spans(self):
        run = RunReport(succeeded=True)
        spans = (SpanRecord(name="reduction.match", track="a", start=0.0, end=0.3),)
        assert run_obs_check("obs-reduction-reconcile", ObsScope(label="f", spans=spans, report=run)) == []
        run.extra["reduction_timings"] = {"match": 0.5}
        assert run_obs_check("obs-reduction-reconcile", ObsScope(label="f", report=run)) == []

    def test_audited_runs_record_clean_traces(self):
        # audit_workflow wires a RecordingTracer per repeat; a clean workflow
        # must produce zero obs findings across the whole composition
        report = audit_workflow(diamond_workflow(2, 2, duration=0.05))
        for check_id in ("obs-span-unclosed", "obs-broker-accounting", "obs-reduction-reconcile"):
            assert not findings_for(report, check_id), check_id


# ---------------------------------------------------- adaptation-plan checks
def tampering_build_plan(tamper):
    """A ``build_plan`` stand-in that corrupts the real plan after building."""

    def build(workflow, spec):
        plan = build_plan(workflow, spec)
        tamper(plan)
        return plan

    return build


def tampered_encoding(monkeypatch, tamper):
    monkeypatch.setattr(
        "repro.hoclflow.translator.build_plan", tampering_build_plan(tamper)
    )
    return encode_workflow(adaptive_diamond_workflow(2, 2))


class TestPlanChecks:
    def test_shipped_adaptive_plan_audits_clean(self):
        encoding = encode_workflow(adaptive_diamond_workflow(2, 2))
        report = audit_plans(encoding)
        assert report.ok(Severity.WARNING), [f.message for f in report]
        assert len(report) == 0

    def test_ghost_task_reference(self, monkeypatch):
        def tamper(plan):
            plan.new_sources = ["ghost-task"]

        report = audit_plans(tampered_encoding(monkeypatch, tamper))
        (finding,) = findings_for(report, "plan-task-existence")
        assert finding.severity is Severity.ERROR
        assert finding.subject == "ghost-task"
        assert "MVSRC" in finding.message

    def test_missing_adapt_consumer(self):
        # tamper *after* encoding: the translator never placed an add_dst
        # rule for the source added behind its back
        encoding = encode_workflow(adaptive_diamond_workflow(2, 2))
        encoding.plans[0].sources.append("merge")
        report = audit_plans(encoding)
        findings = findings_for(report, "plan-adapt-consumers")
        assert findings and all(f.severity is Severity.ERROR for f in findings)
        assert any("add_dst" in f.message for f in findings)

    def test_unwired_trigger_task(self):
        encoding = encode_workflow(adaptive_diamond_workflow(2, 2))
        encoding.plans[0].trigger_tasks = ["split"]  # never actually wired
        report = audit_plans(encoding)
        findings = findings_for(report, "plan-trigger-wiring")
        # both the decentralised and the centralised wire are missing
        assert len(findings) == 2
        assert {f.subject for f in findings} == {"split"}

    def test_replay_parity_holds_for_shipped_plans(self):
        encoding = encode_workflow(adaptive_diamond_workflow(2, 2))
        for plan in encoding.plans:
            scope = PlanScope(label="parity", plan=plan, encoding=encoding)
            checks = {check.id: check for check in available_checks()}
            findings = list(checks["plan-replay-parity"].run(scope))
            assert findings == []


# ------------------------------------------------------- end-to-end drivers
class TestAuditDrivers:
    def test_seeded_never_fired_rule_is_flagged(self):
        report = audit_workflow(no_handoff_workflow())
        errors = [f for f in findings_for(report, "trace-rule-never-fired")]
        assert any(f.subject == "gw_pass" and f.severity is Severity.ERROR for f in errors)
        assert not report.ok(Severity.ERROR)

    def test_adaptive_workflow_audits_fully_clean(self):
        # the replaced body's last task fails by design, so the adaptation
        # fires and even the conditional rules get covered: zero findings.
        report = audit_workflow(adaptive_diamond_workflow(2, 2))
        assert len(report) == 0, [f.message for f in report]

    def test_failed_enactment_disables_coverage(self):
        workflow = diamond_workflow(2, 2, duration=0.05)
        workflow.task("merge").metadata["force_error"] = True
        report = audit_workflow(workflow)
        assert findings_for(report, "run-enactment-failed")
        # no coverage pass ran, so no (bogus) never-fired findings either
        assert not findings_for(report, "trace-rule-never-fired")

    def test_repeats_merge_coverage_across_runs(self):
        report = audit_scenario("forkjoin:size=12", repeats=2)
        assert report.ok(Severity.ERROR), [f.message for f in report]

    def test_enactment_rules_universe(self):
        encoding = encode_workflow(adaptive_diamond_workflow(2, 2))
        decentralized = {rule.name for rule in enactment_rules(encoding)}
        centralized = {rule.name for rule in enactment_rules(encoding, "centralized")}
        assert {"gw_setup", "gw_call", "gw_pass"} <= decentralized
        assert any(name.startswith("trigger_adapt:") for name in decentralized)
        assert any(name.startswith("trigger_adapt:") for name in centralized)

    def test_custom_trace_check_runs_in_audit(self):
        @register_check(
            "custom-min-reactions",
            kind="trace",
            severity=Severity.WARNING,
            description="flag suspiciously tiny traces",
        )
        def check_min_reactions(scope):
            if scope.report.reactions < 10:
                yield Finding(
                    check="custom-min-reactions",
                    severity=Severity.WARNING,
                    subject=scope.label,
                    message=f"only {scope.report.reactions} reactions",
                    location=scope.label,
                )

        try:
            report = audit_reduction(ReductionReport(reactions=3, rule_fires={"a": 3}))
            (finding,) = findings_for(report, "custom-min-reactions")
            assert finding.severity is Severity.WARNING
        finally:
            registry.unregister("custom-min-reactions")


# ------------------------------------------------- shipped catalog is clean
class TestCatalogAuditsClean:
    def test_every_scenario_family_audits_clean(self):
        report = audit_all_scenarios(size=12)
        errors = [f for f in report if f.severity is Severity.ERROR]
        assert not errors, [f"{f.check}: {f.message}" for f in errors]
        assert len(available_scenarios()) >= 8

    @pytest.mark.parametrize("mode", ["threaded", "asyncio", "centralized"])
    def test_other_runtimes_audit_clean(self, mode):
        report = audit_scenario("epigenomics:size=10", mode=mode)
        errors = [f for f in report if f.severity is Severity.ERROR]
        assert not errors, [f"{f.check}: {f.message}" for f in errors]


# ------------------------------------------------------------------------ CLI
class TestAuditCLI:
    def test_audit_clean_scenario(self, capsys):
        assert main(["audit", "--scenario", "forkjoin:size=12"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_audit_flags_seeded_never_fired_rule(self, scratch_scenario, capsys):
        scratch_scenario("no-handoff-scratch", no_handoff_workflow)
        assert main(["audit", "--scenario", "no-handoff-scratch"]) == 1
        output = capsys.readouterr().out
        assert "trace-rule-never-fired" in output and "gw_pass" in output

    def test_audit_flags_broken_plan(self, scratch_scenario, monkeypatch, capsys):
        def factory(size=2, seed=0):
            return adaptive_diamond_workflow(2, 2)

        def tamper(plan):
            plan.new_sources = ["ghost-task"]

        scratch_scenario("broken-plan-scratch", factory)
        monkeypatch.setattr(
            "repro.hoclflow.translator.build_plan", tampering_build_plan(tamper)
        )
        assert main(["audit", "--scenario", "broken-plan-scratch"]) == 1
        output = capsys.readouterr().out
        assert "plan-task-existence" in output and "ghost-task" in output

    def test_audit_json_payload(self, scratch_scenario, capsys):
        scratch_scenario("no-handoff-json", no_handoff_workflow)
        assert main(["audit", "--scenario", "no-handoff-json", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(f["check"] == "trace-rule-never-fired" for f in payload["findings"])

    def test_audit_json_out_artifact(self, scratch_scenario, tmp_path, capsys):
        scratch_scenario("no-handoff-artifact", no_handoff_workflow)
        artifact = tmp_path / "audit.json"
        assert (
            main(["audit", "--scenario", "no-handoff-artifact", "--json-out", str(artifact)])
            == 1
        )
        assert json.loads(artifact.read_text())["findings"]

    def test_audit_workflow_file(self, tmp_path, capsys):
        from repro.workflow.json_format import workflow_to_json

        path = tmp_path / "wf.json"
        workflow_to_json(diamond_workflow(2, 2, duration=0.05), path)
        assert main(["audit", str(path)]) == 0

    def test_audit_requires_exactly_one_target(self, capsys):
        assert main(["audit"]) == 2
        assert main(["audit", "--all-scenarios", "--scenario", "forkjoin"]) == 2


# --------------------------------------------------------------- check registry
class TestDynamicCheckRegistry:
    def test_builtin_catalog_has_all_dynamic_checks(self):
        ids = {check.id for check in available_checks()}
        assert {
            "trace-rule-never-fired",
            "trace-unknown-rule",
            "trace-non-inert",
            "trace-accounting",
            "run-message-accounting",
            "run-task-bookkeeping",
            "run-exit-terminal",
            "run-status-ordering",
            "run-reduction-accounting",
            "plan-task-existence",
            "plan-adapt-consumers",
            "plan-trigger-wiring",
            "plan-replay-parity",
            "obs-span-unclosed",
            "obs-broker-accounting",
            "obs-reduction-reconcile",
        } <= ids
