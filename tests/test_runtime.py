"""Tests for the runtime layer: config, costs, reports, simulated / threaded /
centralised execution, and cross-mode consistency."""

import pytest

from repro.runtime import (
    CostModel,
    GinFlow,
    GinFlowConfig,
    RunReport,
    run_simulation,
    run_threaded,
)
from repro.services import FailureModel, ServiceRegistry
from repro.workflow import (
    Task,
    Workflow,
    adaptive_diamond_workflow,
    diamond_workflow,
    montage_workflow,
    sequence_workflow,
)


class TestConfig:
    def test_defaults_valid(self):
        config = GinFlowConfig()
        assert config.mode == "simulated"
        assert config.broker == "activemq"

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            GinFlowConfig(mode="quantum")

    def test_invalid_executor(self):
        with pytest.raises(ValueError):
            GinFlowConfig(executor="ec2")

    def test_invalid_broker(self):
        with pytest.raises(ValueError):
            GinFlowConfig(broker="rabbitmq")

    def test_failures_require_persistent_broker(self):
        with pytest.raises(ValueError):
            GinFlowConfig(broker="activemq", failures=FailureModel(probability=0.5))
        GinFlowConfig(broker="kafka", failures=FailureModel(probability=0.5))

    def test_with_overrides_does_not_mutate_original(self):
        config = GinFlowConfig()
        other = config.with_overrides(broker="kafka", nodes=5)
        assert config.broker == "activemq"
        assert other.broker == "kafka" and other.nodes == 5

    def test_build_cluster_size(self):
        assert len(GinFlowConfig(nodes=7).build_cluster()) == 7

    def test_build_executor_types(self):
        assert GinFlowConfig(executor="ssh").build_executor().name == "ssh"
        assert GinFlowConfig(executor="mesos").build_executor().name == "mesos"

    def test_broker_profile_selection(self):
        assert GinFlowConfig(broker="kafka").broker_profile().persistent


class TestCostModel:
    def test_handling_cost_grows_with_units(self):
        costs = CostModel()
        assert costs.handling_cost(100) > costs.handling_cost(0)

    def test_broker_profile_lookup(self):
        costs = CostModel()
        assert costs.broker_profile("activemq").name == "activemq"
        with pytest.raises(ValueError):
            costs.broker_profile("zeromq")

    def test_with_overrides(self):
        costs = CostModel().with_overrides(handling_base=1.0)
        assert costs.handling_base == 1.0

    def test_replay_cost_linear(self):
        costs = CostModel()
        assert costs.replay_cost(10) == pytest.approx(10 * costs.recovery_replay_cost_per_message)


class TestRunReport:
    def test_summary_fields(self):
        report = RunReport(succeeded=True, makespan=10.0)
        summary = report.summary()
        assert summary["succeeded"] is True
        assert summary["makespan"] == 10.0

    def test_format_summary_contains_key_lines(self):
        report = RunReport(succeeded=True, deployment_time=1.0, execution_time=2.0, makespan=3.0)
        text = report.format_summary()
        assert "succeeded" in text and "makespan" in text


class TestSimulatedRuntime:
    def test_diamond_completes(self):
        report = run_simulation(diamond_workflow(3, 3, duration=0.1), GinFlowConfig(nodes=10))
        assert report.succeeded
        assert report.results["merge"] == "merge-out"
        assert report.execution_time > 0
        assert report.deployment_time > 0
        assert len(report.tasks) == 11
        assert report.messages_published > 0

    def test_sequence_completes(self):
        report = run_simulation(sequence_workflow(5, duration=0.1), GinFlowConfig(nodes=5))
        assert report.succeeded
        assert report.results["S5"] == "S5-out"

    def test_deterministic_given_seed(self):
        config = GinFlowConfig(nodes=10, seed=42)
        first = run_simulation(diamond_workflow(4, 4, duration=0.1), config)
        second = run_simulation(diamond_workflow(4, 4, duration=0.1), config)
        assert first.execution_time == second.execution_time
        assert first.messages_published == second.messages_published

    def test_adaptive_diamond_triggers_adaptation(self):
        report = run_simulation(adaptive_diamond_workflow(3, 3), GinFlowConfig(nodes=10))
        assert report.succeeded
        assert report.adaptations_triggered == 1
        assert report.tasks["T_3_3"].error
        assert report.tasks["R_3_3"].result is not None

    def test_adaptive_costs_more_than_plain(self):
        config = GinFlowConfig(nodes=10)
        plain = run_simulation(diamond_workflow(4, 4, duration=0.1), config)
        adaptive = run_simulation(adaptive_diamond_workflow(4, 4, duration=0.1), config)
        assert adaptive.execution_time > plain.execution_time

    def test_kafka_slower_than_activemq(self):
        workflow = diamond_workflow(5, 5, duration=0.1)
        amq = run_simulation(workflow, GinFlowConfig(nodes=10, broker="activemq"))
        kafka = run_simulation(workflow, GinFlowConfig(nodes=10, broker="kafka"))
        assert kafka.execution_time > amq.execution_time

    def test_mesos_deployment_differs_from_ssh(self):
        workflow = diamond_workflow(5, 5, duration=0.1)
        ssh = run_simulation(workflow, GinFlowConfig(nodes=5, executor="ssh"))
        mesos = run_simulation(workflow, GinFlowConfig(nodes=5, executor="mesos"))
        assert ssh.deployment_time != mesos.deployment_time

    def test_failure_injection_recovers_and_completes(self):
        config = GinFlowConfig(
            nodes=25,
            executor="mesos",
            broker="kafka",
            failures=FailureModel(probability=0.5, delay=0.0),
            seed=7,
        )
        report = run_simulation(montage_workflow(duration_scale=0.2), config)
        assert report.succeeded
        assert report.failures_injected > 0
        assert report.recoveries == report.failures_injected
        baseline = run_simulation(
            montage_workflow(duration_scale=0.2),
            GinFlowConfig(nodes=25, executor="mesos", broker="kafka", seed=7),
        )
        assert report.execution_time > baseline.execution_time

    def test_failures_increase_with_probability(self):
        def run(probability):
            config = GinFlowConfig(
                nodes=25,
                executor="mesos",
                broker="kafka",
                failures=FailureModel(probability=probability, delay=0.0),
                seed=11,
            )
            return run_simulation(montage_workflow(duration_scale=0.1), config)

        low, high = run(0.2), run(0.8)
        assert high.failures_injected > low.failures_injected

    def test_status_updates_recorded(self):
        report = run_simulation(diamond_workflow(2, 2, duration=0.1), GinFlowConfig(nodes=5))
        assert report.extra["status_updates"] > 0
        assert report.timeline  # state transitions were recorded

    def test_timeline_can_be_disabled(self):
        report = run_simulation(
            diamond_workflow(2, 2, duration=0.1), GinFlowConfig(nodes=5, collect_timeline=False)
        )
        assert report.timeline == []

    def test_duplicate_results_counter_zero_without_failures(self):
        report = run_simulation(diamond_workflow(3, 3, duration=0.1), GinFlowConfig(nodes=5))
        assert report.duplicate_results_ignored == 0


class TestThreadedRuntime:
    def test_diamond_completes(self):
        report = run_threaded(diamond_workflow(3, 2), timeout=30.0)
        assert report.succeeded
        assert report.results["merge"] == "merge-out"
        assert report.mode == "threaded"

    def test_adaptive_diamond_completes(self):
        report = run_threaded(adaptive_diamond_workflow(2, 2), timeout=30.0)
        assert report.succeeded
        assert report.adaptations_triggered == 1
        assert report.tasks["T_2_2"].error

    def test_real_python_services(self):
        registry = ServiceRegistry()
        registry.register_function("square", lambda value: value * value)
        registry.register_function("sum2", lambda a, b: a + b)
        workflow = Workflow("math")
        workflow.add_task(Task("A", "square", inputs=[3]))
        workflow.add_task(Task("B", "square", inputs=[4]))
        workflow.add_task(Task("C", "sum2"))
        workflow.add_dependency("A", "C")
        workflow.add_dependency("B", "C")
        config = GinFlowConfig(mode="threaded", registry=registry)
        report = run_threaded(workflow, config, timeout=30.0)
        assert report.succeeded
        assert report.results["C"] == 25

    def test_kafka_broker_mode(self):
        config = GinFlowConfig(mode="threaded", broker="kafka")
        report = run_threaded(diamond_workflow(2, 2), config, timeout=30.0)
        assert report.succeeded


class TestGinFlowFacade:
    def test_default_simulated_run(self):
        report = GinFlow().run(diamond_workflow(2, 2, duration=0.1), nodes=5)
        assert report.succeeded and report.mode == "simulated"

    def test_mode_override_per_run(self):
        ginflow = GinFlow()
        assert ginflow.run(diamond_workflow(2, 1), mode="centralized").mode == "centralized"
        assert ginflow.run(diamond_workflow(2, 1), mode="threaded").mode == "threaded"
        assert ginflow.run(diamond_workflow(2, 1), mode="asyncio").mode == "asyncio"

    def test_json_workflow_input(self):
        from repro.workflow import workflow_to_json

        text = workflow_to_json(diamond_workflow(2, 1))
        report = GinFlow().run(text, nodes=5)
        assert report.succeeded

    def test_register_service(self):
        ginflow = GinFlow()
        ginflow.register_service("triple", lambda value: value * 3)
        workflow = Workflow("w")
        workflow.add_task(Task("A", "triple", inputs=[5]))
        report = ginflow.run(workflow, mode="centralized")
        assert report.results["A"] == 15

    def test_centralized_adaptive(self):
        report = GinFlow().run(adaptive_diamond_workflow(2, 2), mode="centralized")
        assert report.succeeded
        assert report.adaptations_triggered == 1

    def test_all_modes_agree_on_results(self):
        workflow = diamond_workflow(3, 2)
        ginflow = GinFlow()
        results = {}
        for mode in ("simulated", "threaded", "asyncio", "centralized"):
            report = ginflow.run(workflow, mode=mode, nodes=5)
            assert report.succeeded, mode
            results[mode] = report.results["merge"]
        assert len(set(results.values())) == 1

    def test_all_modes_agree_on_adaptive_results(self):
        workflow = adaptive_diamond_workflow(2, 2)
        ginflow = GinFlow()
        for mode in ("simulated", "threaded", "asyncio", "centralized"):
            report = ginflow.run(workflow, mode=mode, nodes=5)
            assert report.succeeded, mode
            assert report.tasks["R_2_2"].result == "R_2_2-out", mode
