"""Unit tests for the cluster model, the messaging substrate and the services."""

import pytest

from repro.cluster import (
    Cluster,
    GRID5000_TOTAL_CORES,
    MesosMaster,
    NetworkModel,
    Node,
    grid5000_cluster,
    grid5000_network,
)
from repro.messaging import (
    ACTIVEMQ_PROFILE,
    KAFKA_PROFILE,
    ActiveMQBroker,
    KafkaBroker,
    Message,
    MessageKind,
    MessageLog,
    SimulatedBroker,
    agent_topic,
    profile_by_name,
)
from repro.services import (
    FailureModel,
    InvocationContext,
    NO_FAILURES,
    PythonService,
    ServiceRegistry,
    SyntheticService,
)
from repro.simkernel import RandomStreams, Simulator


class TestNodesAndCluster:
    def test_node_capacity(self):
        node = Node("n1", cores=4, agents_per_core=2)
        assert node.capacity == 8
        assert node.free_slots == 8

    def test_assign_and_release(self):
        node = Node("n1", cores=1)
        node.assign("a1")
        assert node.free_slots == 1
        node.release("a1")
        assert node.free_slots == 2

    def test_assign_over_capacity(self):
        node = Node("n1", cores=1, agents_per_core=1)
        node.assign("a1")
        with pytest.raises(RuntimeError):
            node.assign("a2")

    def test_cluster_requires_nodes(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_cluster_unique_names(self):
        with pytest.raises(ValueError):
            Cluster([Node("n", 1), Node("n", 1)])

    def test_round_robin_placement_spreads(self):
        cluster = Cluster([Node("a", 2), Node("b", 2)])
        placement = cluster.round_robin_placement(["x", "y", "z"])
        assert placement["x"].name == "a"
        assert placement["y"].name == "b"
        assert placement["z"].name == "a"

    def test_round_robin_capacity_exceeded(self):
        cluster = Cluster([Node("a", 1, agents_per_core=1)])
        with pytest.raises(RuntimeError):
            cluster.round_robin_placement(["x", "y"])

    def test_subset(self):
        cluster = grid5000_cluster(25)
        sub = cluster.subset(5)
        assert len(sub) == 5

    def test_grid5000_total_cores(self):
        assert grid5000_cluster(25).total_cores == GRID5000_TOTAL_CORES == 568

    def test_grid5000_capacity_allows_1000_services(self):
        assert grid5000_cluster(25).total_capacity >= 1000

    def test_grid5000_bad_node_count(self):
        with pytest.raises(ValueError):
            grid5000_cluster(0)
        with pytest.raises(ValueError):
            grid5000_cluster(26)

    def test_network_transfer_time(self):
        network = NetworkModel(latency=0.001, bandwidth=1000.0, jitter=0.0)
        assert network.transfer_time(500) == pytest.approx(0.001 + 0.5)

    def test_network_negative_size(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1)

    def test_grid5000_network_is_fast(self):
        assert grid5000_network().transfer_time(1024) < 0.01

    def test_mesos_master_offers(self):
        cluster = Cluster([Node("a", 1), Node("b", 1)])
        master = MesosMaster(cluster, offer_interval=2.0, registration_delay=1.0)
        assert master.next_offer_time() == 1.0
        offer = master.make_offer()
        assert len(offer) == 2
        assert master.next_offer_time() == 3.0

    def test_mesos_master_skips_full_nodes(self):
        cluster = Cluster([Node("a", 1, agents_per_core=1)])
        cluster.node("a").assign("x")
        master = MesosMaster(cluster)
        assert len(master.make_offer()) == 0


class TestBrokers:
    def test_profiles(self):
        assert profile_by_name("activemq") is ACTIVEMQ_PROFILE
        assert profile_by_name("kafka") is KAFKA_PROFILE
        with pytest.raises(ValueError):
            profile_by_name("rabbitmq")

    def test_kafka_is_persistent_activemq_is_not(self):
        assert KAFKA_PROFILE.persistent and not ACTIVEMQ_PROFILE.persistent

    def test_kafka_costs_higher(self):
        assert KAFKA_PROFILE.per_message_time > ACTIVEMQ_PROFILE.per_message_time

    def test_message_log_offsets(self):
        log = MessageLog()
        m1 = Message(topic="t", kind="RESULT", sender="a", recipient="b")
        m2 = Message(topic="t", kind="RESULT", sender="a", recipient="b")
        assert log.append(m1) == 0
        assert log.append(m2) == 1
        assert log.replay("t") == [m1, m2]
        assert log.replay("t", 1) == [m2]
        assert log.size("t") == 2

    def test_in_process_broker_delivery(self):
        broker = ActiveMQBroker()
        received = []
        broker.subscribe("topic", received.append)
        broker.publish(Message(topic="topic", kind="RESULT", sender="a", recipient="b", payload=1))
        assert len(received) == 1
        assert broker.published_count() == 1

    def test_in_process_broker_unsubscribe(self):
        broker = ActiveMQBroker()
        received = []
        broker.subscribe("topic", received.append)
        broker.unsubscribe("topic", received.append)
        broker.publish(Message(topic="topic", kind="RESULT", sender="a", recipient="b"))
        assert received == []

    def test_activemq_replay_not_supported(self):
        with pytest.raises(RuntimeError):
            ActiveMQBroker().replay("topic")

    def test_kafka_replay(self):
        broker = KafkaBroker()
        message = Message(topic=agent_topic("T1"), kind="RESULT", sender="a", recipient="T1")
        broker.publish(message)
        assert broker.replay(agent_topic("T1")) == [message]
        assert broker.consumer_offset(agent_topic("T1")) == 1
        assert broker.replay_from_beginning(agent_topic("T1")) == [message]

    def test_message_ids_unique(self):
        a = Message(topic="t", kind="RESULT", sender="x", recipient="y")
        b = Message(topic="t", kind="RESULT", sender="x", recipient="y")
        assert a.message_id != b.message_id

    def test_simulated_broker_delivers_with_delay(self):
        sim = Simulator()
        broker = SimulatedBroker(sim, ACTIVEMQ_PROFILE, randomness=RandomStreams(1))
        received = []
        broker.subscribe("t", lambda m: received.append(sim.now))
        broker.publish(Message(topic="t", kind="RESULT", sender="a", recipient="b"))
        sim.run()
        assert len(received) == 1
        assert received[0] > 0.0
        assert broker.delivered_count() == 1

    def test_simulated_broker_serialises_messages(self):
        sim = Simulator()
        broker = SimulatedBroker(sim, KAFKA_PROFILE, randomness=RandomStreams(1))
        times = []
        broker.subscribe("t", lambda m: times.append(sim.now))
        for _ in range(3):
            broker.publish(Message(topic="t", kind="RESULT", sender="a", recipient="b"))
        sim.run()
        assert times == sorted(times)
        assert times[-1] - times[0] >= 2 * KAFKA_PROFILE.per_message_time * 0.99

    def test_simulated_broker_replay_requires_persistence(self):
        sim = Simulator()
        broker = SimulatedBroker(sim, ACTIVEMQ_PROFILE)
        with pytest.raises(RuntimeError):
            broker.replay("t")

    def test_simulated_kafka_broker_logs(self):
        sim = Simulator()
        broker = SimulatedBroker(sim, KAFKA_PROFILE)
        broker.publish(Message(topic="t", kind="RESULT", sender="a", recipient="b"))
        assert len(broker.replay("t")) == 1


class TestServices:
    def test_synthetic_service_output(self):
        service = SyntheticService()
        result = service.invoke([], InvocationContext(task_name="T1", duration=2.0))
        assert result.value == "T1-out"
        assert result.duration == 2.0
        assert not result.failed

    def test_synthetic_service_forced_error(self):
        service = SyntheticService()
        context = InvocationContext(task_name="T1", metadata={"force_error": True})
        assert service.invoke([], context).failed

    def test_synthetic_service_error_only_first_attempts(self):
        service = SyntheticService()
        metadata = {"force_error": True, "force_error_attempts": 1}
        first = service.invoke([], InvocationContext(task_name="T1", metadata=metadata, attempt=1))
        second = service.invoke([], InvocationContext(task_name="T1", metadata=metadata, attempt=2))
        assert first.failed and not second.failed

    def test_python_service(self):
        service = PythonService("add", lambda a, b: a + b)
        result = service.invoke([2, 3], InvocationContext(task_name="T"))
        assert result.value == 5

    def test_python_service_exception_becomes_failure(self):
        service = PythonService("boom", lambda: 1 / 0)
        assert service.invoke([], InvocationContext(task_name="T")).failed

    def test_python_service_requires_callable(self):
        with pytest.raises(TypeError):
            PythonService("x", 42)

    def test_registry_resolution_and_fallback(self):
        registry = ServiceRegistry()
        registry.register_function("add", lambda a, b: a + b)
        assert registry.knows("add")
        assert not registry.knows("unknown")
        fallback = registry.resolve("unknown")
        assert isinstance(fallback, SyntheticService)
        assert registry.resolve("unknown") is fallback

    def test_registry_copy(self):
        registry = ServiceRegistry()
        registry.register_function("a", lambda: 1)
        clone = registry.copy()
        clone.register_function("b", lambda: 2)
        assert not registry.knows("b")


class TestFailureModel:
    def test_disabled_by_default(self):
        assert not NO_FAILURES.enabled
        assert NO_FAILURES.crash_time(100, RandomStreams(1), "x") is None

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            FailureModel(probability=1.0)
        with pytest.raises(ValueError):
            FailureModel(probability=-0.1)

    def test_short_invocations_not_exposed(self):
        model = FailureModel(probability=0.99, delay=50.0)
        assert model.crash_time(10.0, RandomStreams(1), "x") is None

    def test_crash_time_equals_delay(self):
        model = FailureModel(probability=0.999999, delay=5.0)
        assert model.crash_time(100.0, RandomStreams(1), "x") == 5.0

    def test_expected_failures_formula(self):
        model = FailureModel(probability=0.5, delay=0.0)
        assert model.expected_failures(100) == pytest.approx(100.0)
        model = FailureModel(probability=0.8, delay=0.0)
        assert model.expected_failures(118) == pytest.approx(472.0)

    def test_recovery_overhead(self):
        model = FailureModel(probability=0.1, detection_delay=1.0, restart_delay=2.0)
        assert model.recovery_overhead() == 3.0

    def test_crash_draw_reproducible(self):
        model = FailureModel(probability=0.5, delay=0.0)
        draws_a = [model.crash_time(10, RandomStreams(9), f"l{i}") for i in range(20)]
        draws_b = [model.crash_time(10, RandomStreams(9), f"l{i}") for i in range(20)]
        assert draws_a == draws_b
