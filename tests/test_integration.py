"""End-to-end integration tests across the whole stack.

These tests exercise the scenarios the paper walks through: the Fig. 5-8
adaptive workflow, the diamond workloads, the Montage resilience run, and
consistency between the three execution modes.
"""

import pytest

from repro.runtime import GinFlow, GinFlowConfig, run_simulation
from repro.services import FailureModel, ServiceRegistry
from repro.workflow import (
    AdaptationSpec,
    Task,
    Workflow,
    adaptive_diamond_workflow,
    diamond_workflow,
    montage_workflow,
)


def fig5_workflow(force_error=True):
    """The paper's running example (Fig. 5/6): T2 replaced by T2p on failure."""
    workflow = Workflow("fig5")
    workflow.add_task(Task("T1", "s1", inputs=["input"], duration=0.05))
    workflow.add_task(Task("T2", "s2", duration=0.05, metadata={"force_error": force_error}))
    workflow.add_task(Task("T3", "s3", duration=0.05))
    workflow.add_task(Task("T4", "s4", duration=0.05))
    workflow.add_dependency("T1", "T2")
    workflow.add_dependency("T1", "T3")
    workflow.add_dependency("T2", "T4")
    workflow.add_dependency("T3", "T4")
    replacement = Workflow("alt")
    replacement.add_task(Task("T2p", "s2-alt", duration=0.05))
    workflow.add_adaptation(
        AdaptationSpec("replace-T2", ["T2"], replacement, entry_sources={"T2p": ["T1"]})
    )
    return workflow


class TestFig5Scenario:
    @pytest.mark.parametrize("mode", ["simulated", "threaded", "centralized"])
    def test_failure_triggers_replacement(self, mode):
        report = GinFlow().run(fig5_workflow(force_error=True), mode=mode, nodes=5)
        assert report.succeeded
        assert report.tasks["T2"].error
        assert report.tasks["T2p"].result == "T2p-out"
        assert report.tasks["T4"].result == "T4-out"

    @pytest.mark.parametrize("mode", ["simulated", "threaded", "centralized"])
    def test_no_failure_means_no_adaptation(self, mode):
        report = GinFlow().run(fig5_workflow(force_error=False), mode=mode, nodes=5)
        assert report.succeeded
        assert not report.tasks["T2"].error
        # the replacement task never runs
        assert report.tasks["T2p"].result is None
        assert report.adaptations_triggered == 0

    def test_final_task_receives_both_branches(self):
        registry = ServiceRegistry()
        received = {}

        def sink(*parameters):
            received["params"] = parameters
            return "sink-done"

        registry.register_function("s4", sink)
        workflow = fig5_workflow(force_error=True)
        report = GinFlow(registry=registry).run(workflow, mode="centralized")
        assert report.succeeded
        # T4 received exactly two inputs: T3's and the replacement's
        assert len(received["params"]) == 2


class TestDiamondScenarios:
    def test_all_adaptation_scenarios_complete(self):
        for body, replacement in (("simple", "simple"), ("simple", "full"), ("full", "simple")):
            workflow = adaptive_diamond_workflow(3, 3, body, replacement, duration=0.05)
            report = run_simulation(workflow, GinFlowConfig(nodes=10, collect_timeline=False))
            assert report.succeeded, (body, replacement)
            assert report.adaptations_triggered == 1

    def test_larger_diamonds_take_longer(self):
        config = GinFlowConfig(nodes=25, collect_timeline=False)
        small = run_simulation(diamond_workflow(4, 4, duration=0.1), config)
        large = run_simulation(diamond_workflow(8, 8, duration=0.1), config)
        assert large.execution_time > small.execution_time

    def test_full_connectivity_costs_more(self):
        config = GinFlowConfig(nodes=25, collect_timeline=False)
        simple = run_simulation(diamond_workflow(6, 6, "simple", duration=0.1), config)
        full = run_simulation(diamond_workflow(6, 6, "full", duration=0.1), config)
        assert full.execution_time > simple.execution_time
        assert full.messages_published > simple.messages_published

    def test_1000_service_scale(self):
        # the paper deploys up to 1000 services on the 25-node testbed
        workflow = diamond_workflow(22, 22, "simple", duration=0.05)
        assert len(workflow) == 486
        report = run_simulation(workflow, GinFlowConfig(nodes=25, collect_timeline=False))
        assert report.succeeded


class TestMontageResilience:
    def test_baseline_close_to_paper(self):
        config = GinFlowConfig(nodes=25, executor="mesos", broker="kafka", collect_timeline=False)
        report = run_simulation(montage_workflow(), config)
        assert report.succeeded
        # paper baseline: 484 s average; accept the calibration tolerance
        assert 440 <= report.execution_time <= 560

    def test_heavy_failures_still_complete(self):
        config = GinFlowConfig(
            nodes=25,
            executor="mesos",
            broker="kafka",
            failures=FailureModel(probability=0.8, delay=0.0),
            seed=5,
            collect_timeline=False,
        )
        report = run_simulation(montage_workflow(duration_scale=0.2), config)
        assert report.succeeded
        assert report.failures_injected > 50
        assert report.recoveries == report.failures_injected
        assert report.duplicate_results_ignored >= 0

    def test_late_failures_cost_more_than_early_failures(self):
        def run(delay):
            config = GinFlowConfig(
                nodes=25,
                executor="mesos",
                broker="kafka",
                failures=FailureModel(probability=0.5, delay=delay),
                seed=13,
                collect_timeline=False,
            )
            return run_simulation(montage_workflow(), config)

        early, late = run(0.0), run(100.0)
        assert early.succeeded and late.succeeded
        # late (T=100) failures lose 100 s of work each: more expensive per failure
        early_overhead_per_failure = max(early.execution_time - 500, 1) / max(early.failures_injected, 1)
        late_overhead_per_failure = max(late.execution_time - 500, 1) / max(late.failures_injected, 1)
        assert late_overhead_per_failure > early_overhead_per_failure


class TestCrossModeConsistency:
    def test_task_results_identical_across_modes(self):
        workflow = diamond_workflow(3, 3)
        reports = {
            mode: GinFlow().run(workflow, mode=mode, nodes=5)
            for mode in ("simulated", "threaded", "centralized")
        }
        reference = {name: outcome.result for name, outcome in reports["centralized"].tasks.items()}
        for mode, report in reports.items():
            for name, outcome in report.tasks.items():
                assert outcome.result == reference[name], (mode, name)

    def test_adaptive_error_tasks_identical_across_modes(self):
        workflow = adaptive_diamond_workflow(2, 2)
        for mode in ("simulated", "threaded", "centralized"):
            report = GinFlow().run(workflow, mode=mode, nodes=5)
            assert report.tasks["T_2_2"].error, mode
            assert report.tasks["R_1_1"].result is not None, mode
