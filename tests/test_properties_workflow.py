"""Property-based tests (hypothesis) on the workflow and agent layers.

Invariants checked:

* every randomly generated layered DAG executes to completion on the
  simulated runtime, and every task ends with a result;
* message delivery order between independent producers never changes the
  parameter list a consumer builds (deterministic ordering by producer name);
* JSON serialisation round-trips arbitrary generated workflows;
* duplicated deliveries (recovery replays) never change an agent's outcome.
"""

from hypothesis import given, settings, strategies as st

from repro.agents import AgentCore, StartInvocation
from repro.hoclflow import encode_workflow
from repro.runtime import GinFlowConfig, run_simulation
from repro.workflow import Task, Workflow, workflow_from_json, workflow_to_json


@st.composite
def layered_workflows(draw):
    """Random layered DAGs: 2-4 layers of 1-4 tasks, edges only forward."""
    layer_sizes = draw(st.lists(st.integers(1, 4), min_size=2, max_size=4))
    workflow = Workflow("generated")
    layers: list[list[str]] = []
    counter = 0
    for size in layer_sizes:
        layer = []
        for _ in range(size):
            name = f"N{counter}"
            counter += 1
            workflow.add_task(Task(name, "synthetic", duration=0.01))
            layer.append(name)
        layers.append(layer)
    # give entry tasks an input
    for name in layers[0]:
        workflow.task(name).inputs.append("seed")
    # connect every task of layer i+1 to at least one task of layer i
    for previous, current in zip(layers, layers[1:]):
        for destination in current:
            count = draw(st.integers(1, len(previous)))
            sources = draw(
                st.lists(st.sampled_from(previous), min_size=count, max_size=count, unique=True)
            )
            for source in sources:
                workflow.add_dependency(source, destination)
    return workflow


@settings(max_examples=15, deadline=None)
@given(layered_workflows())
def test_generated_workflows_complete(workflow):
    workflow.validate()
    report = run_simulation(workflow, GinFlowConfig(nodes=5, collect_timeline=False))
    assert report.succeeded
    for name in workflow.task_names():
        assert report.tasks[name].result is not None


@settings(max_examples=15, deadline=None)
@given(layered_workflows())
def test_json_roundtrip_preserves_structure(workflow):
    clone = workflow_from_json(workflow_to_json(workflow))
    assert set(clone.task_names()) == set(workflow.task_names())
    assert sorted(clone.dependencies()) == sorted(workflow.dependencies())
    assert clone.is_valid()


@settings(max_examples=25, deadline=None)
@given(st.permutations(["P1", "P2", "P3"]))
def test_parameter_order_independent_of_arrival_order(arrival_order):
    workflow = Workflow("fanin")
    for name in ("P1", "P2", "P3"):
        workflow.add_task(Task(name, "synthetic", inputs=["x"]))
    workflow.add_task(Task("SINK", "synthetic"))
    for name in ("P1", "P2", "P3"):
        workflow.add_dependency(name, "SINK")
    encoding = encode_workflow(workflow)
    core = AgentCore(encoding.tasks["SINK"])
    core.boot()
    invocation = None
    for source in arrival_order:
        for action in core.receive_result(source, f"{source}-value"):
            if isinstance(action, StartInvocation):
                invocation = action
    assert invocation is not None
    assert list(invocation.parameters) == ["P1-value", "P2-value", "P3-value"]


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.sampled_from(["P1", "P2"]), min_size=2, max_size=8),
)
def test_duplicate_deliveries_never_change_outcome(delivery_sequence):
    # ensure both producers appear at least once
    deliveries = list(delivery_sequence) + ["P1", "P2"]
    workflow = Workflow("dup")
    for name in ("P1", "P2"):
        workflow.add_task(Task(name, "synthetic", inputs=["x"]))
    workflow.add_task(Task("SINK", "synthetic"))
    workflow.add_dependency("P1", "SINK")
    workflow.add_dependency("P2", "SINK")
    encoding = encode_workflow(workflow)
    core = AgentCore(encoding.tasks["SINK"])
    core.boot()
    invocations = []
    for source in deliveries:
        for action in core.receive_result(source, f"{source}-value"):
            if isinstance(action, StartInvocation):
                invocations.append(action)
    assert len(invocations) == 1
    assert list(invocations[0].parameters) == ["P1-value", "P2-value"]
