#!/usr/bin/env python3
"""Quickstart: define a workflow, run it, inspect the report.

This example builds the small diamond workflow of the paper's Fig. 2
(T1 fans out to T2/T3 which join into T4), registers real Python services
for each task, and executes it three times — once per execution mode:

* ``centralized`` — one HOCL interpreter rewrites the whole multiset;
* ``threaded``    — one service-agent thread per task, in-process broker;
* ``simulated``   — the virtual-time distributed runtime on a simulated
  25-node cluster (what the paper's experiments use).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import GinFlow, Task, Workflow  # noqa: E402


def build_workflow() -> Workflow:
    """The Fig. 2 diamond: T1 -> {T2, T3} -> T4."""
    workflow = Workflow("quickstart-diamond")
    workflow.add_task(Task("T1", service="tokenize", inputs=["the quick brown fox"]))
    workflow.add_task(Task("T2", service="count_words"))
    workflow.add_task(Task("T3", service="longest_word"))
    workflow.add_task(Task("T4", service="summarize"))
    workflow.add_dependency("T1", "T2")
    workflow.add_dependency("T1", "T3")
    workflow.add_dependency("T2", "T4")
    workflow.add_dependency("T3", "T4")
    workflow.validate()
    return workflow


def register_services(ginflow: GinFlow) -> None:
    """Plug real Python callables behind the service names."""
    ginflow.register_service("tokenize", lambda text: text.split())
    ginflow.register_service("count_words", lambda words: len(words))
    ginflow.register_service("longest_word", lambda words: max(words, key=len))
    ginflow.register_service(
        "summarize", lambda count, longest: f"{count} words, longest is {longest!r}"
    )


def main() -> int:
    workflow = build_workflow()
    ginflow = GinFlow()
    register_services(ginflow)

    print(f"workflow: {workflow.name} — {len(workflow)} tasks, {len(workflow.dependencies())} dependencies")
    print()

    for mode in ("centralized", "threaded", "simulated"):
        report = ginflow.run(workflow, mode=mode, nodes=5)
        print(f"[{mode}] succeeded={report.succeeded}  T4 result: {report.results.get('T4')!r}")
        if mode == "simulated":
            print(f"          deployment {report.deployment_time:.2f} s, "
                  f"execution {report.execution_time:.2f} s, "
                  f"{report.messages_published} messages")
    print()
    print(report.format_summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
