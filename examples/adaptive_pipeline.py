#!/usr/bin/env python3
"""Adaptive workflow: switch to an alternative scenario when a task fails.

This reproduces the paper's running example (Fig. 5-8) on a realistic
scenario: an image-processing pipeline whose "denoise-gpu" step is known to
be flaky.  The workflow declares an alternative sub-workflow ("denoise-cpu")
that is plugged in on-the-fly when the GPU step reports an error — the rest
of the pipeline is *not* restarted, and the final aggregation receives the
alternative branch's output instead.

Run with::

    python examples/adaptive_pipeline.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AdaptationSpec, GinFlow, Task, Workflow  # noqa: E402


def build_pipeline() -> Workflow:
    """acquire -> {denoise_gpu (flaky), contrast} -> fuse -> publish."""
    workflow = Workflow("imaging-pipeline")
    workflow.add_task(Task("acquire", service="acquire", inputs=["scan-042"]))
    # the GPU denoiser always fails in this demo (force_error), standing in
    # for a service running on a prone-to-failure platform
    workflow.add_task(Task("denoise_gpu", service="denoise_gpu", metadata={"force_error": True}))
    workflow.add_task(Task("contrast", service="contrast"))
    workflow.add_task(Task("fuse", service="fuse"))
    workflow.add_task(Task("publish", service="publish"))
    workflow.add_dependency("acquire", "denoise_gpu")
    workflow.add_dependency("acquire", "contrast")
    workflow.add_dependency("denoise_gpu", "fuse")
    workflow.add_dependency("contrast", "fuse")
    workflow.add_dependency("fuse", "publish")

    # the alternative scenario: a slower but reliable CPU denoiser
    alternative = Workflow("cpu-denoise")
    alternative.add_task(Task("denoise_cpu", service="denoise_cpu"))
    workflow.add_adaptation(
        AdaptationSpec(
            name="gpu-to-cpu",
            replaced=["denoise_gpu"],
            replacement=alternative,
            entry_sources={"denoise_cpu": ["acquire"]},
        )
    )
    workflow.validate()
    return workflow


def register_services(ginflow: GinFlow) -> None:
    ginflow.register_service("acquire", lambda scan: f"raw({scan})")
    ginflow.register_service("denoise_gpu", lambda raw: f"gpu-denoised({raw})")
    ginflow.register_service("denoise_cpu", lambda raw: f"cpu-denoised({raw})")
    ginflow.register_service("contrast", lambda raw: f"contrasted({raw})")
    ginflow.register_service("fuse", lambda a, b: f"fused({a} + {b})")
    ginflow.register_service("publish", lambda fused: f"published[{fused}]")


def main() -> int:
    workflow = build_pipeline()
    ginflow = GinFlow()
    register_services(ginflow)

    report = ginflow.run(workflow, mode="threaded")
    print("pipeline succeeded:", report.succeeded)
    print("adaptations triggered:", report.adaptations_triggered)
    print("flaky task in error?:", report.tasks["denoise_gpu"].error)
    print("replacement output  :", report.tasks["denoise_cpu"].result)
    print("final output        :", report.results.get("publish"))
    print()
    print("timeline (state changes):")
    for event in report.timeline:
        print(f"  t={event.time:9.3f}  {event.task:12s}  {event.event}")
    return 0 if report.succeeded else 1


if __name__ == "__main__":
    raise SystemExit(main())
