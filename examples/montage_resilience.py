#!/usr/bin/env python3
"""Montage at scale, with failure injection (the paper's Section V-D setup).

This example runs the 118-task Montage-like workflow on the simulated
distributed runtime (Mesos executor, Kafka broker, 25-node Grid'5000-like
cluster) and compares a clean run against a run where every agent fails with
probability p = 0.5 fifteen seconds into its service execution — the middle
column of Fig. 16.  Thanks to the Kafka message log, crashed agents are
restarted, replay their history, re-invoke their (idempotent) service and the
workflow still completes.

Run with::

    python examples/montage_resilience.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import FailureModel, GinFlow, GinFlowConfig, montage_workflow  # noqa: E402


def main() -> int:
    workflow = montage_workflow()
    print(f"workflow: {workflow.name} — {len(workflow)} tasks, "
          f"critical path {workflow.critical_path_length():.0f} s of service time")

    base_config = GinFlowConfig(nodes=25, executor="mesos", broker="kafka", collect_timeline=False)
    ginflow = GinFlow(base_config)

    print("\n--- clean run (no failures) ---")
    clean = ginflow.run(workflow)
    print(f"succeeded: {clean.succeeded}")
    print(f"deployment {clean.deployment_time:.1f} s, execution {clean.execution_time:.1f} s")

    print("\n--- failure injection: p=0.5, T=15 s (Fig. 16, middle column) ---")
    faulty = ginflow.run(
        workflow,
        failures=FailureModel(probability=0.5, delay=15.0),
        seed=7,
    )
    print(f"succeeded: {faulty.succeeded}")
    print(f"execution {faulty.execution_time:.1f} s "
          f"(+{faulty.execution_time - clean.execution_time:.1f} s vs clean)")
    print(f"failures injected : {faulty.failures_injected}")
    print(f"agents recovered  : {faulty.recoveries}")
    print(f"duplicate results ignored by successors: {faulty.duplicate_results_ignored}")

    mosaic = faulty.results.get("mJPEG")
    print(f"\nfinal mosaic artefact: {mosaic!r}")
    return 0 if (clean.succeeded and faulty.succeeded) else 1


if __name__ == "__main__":
    raise SystemExit(main())
