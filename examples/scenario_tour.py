#!/usr/bin/env python3
"""Scenario tour: enact every registered workflow family and compare them.

The scenario catalog (:mod:`repro.scenarios`) registers eight structurally
distinct DAG families — Pegasus-like shapes (Epigenomics, CyberShake, LIGO
Inspiral, SIPHT) and synthetic stress shapes (random layered, map-reduce,
fork-join, long chain).  This example:

1. builds each scenario at the same size and prints its shape statistics
   (tasks, dependencies, depth, critical path vs. total work);
2. runs each one end-to-end on the simulated runtime;
3. sweeps three families over two cluster sizes through ``GinFlow.sweep``
   using the ``scenario`` grid axis.

Run with::

    python examples/scenario_tour.py [size]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import GinFlow, ParameterGrid  # noqa: E402
from repro.scenarios import available_scenarios, build_scenario, get_scenario  # noqa: E402


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    ginflow = GinFlow()

    print(f"-- the catalog at size={size} --")
    header = f"{'scenario':<16} {'tasks':>5} {'deps':>6} {'depth':>5} {'critical':>9} {'work':>9}"
    print(header)
    print("-" * len(header))
    for name in available_scenarios():
        workflow = build_scenario(f"{name}:size={size},seed=1")
        print(
            f"{name:<16} {len(workflow):>5} {len(workflow.dependencies()):>6} "
            f"{len(workflow.levels()):>5} {workflow.critical_path_length():>8.0f}s "
            f"{workflow.total_work():>8.0f}s"
        )

    print("\n-- one simulated enactment per family --")
    for name in available_scenarios():
        workflow = build_scenario(f"{name}:size={size},seed=1")
        report = ginflow.run(workflow, nodes=25)
        structure = get_scenario(name).structure
        print(f"{name:<16} succeeded={report.succeeded}  makespan={report.makespan:7.1f}s  ({structure})")

    print("\n-- sweep: scenario x nodes --")
    sweep = ginflow.sweep(
        None,
        ParameterGrid({
            "scenario": [f"epigenomics:size={size}", f"cybershake:size={size}", f"sipht:size={size}"],
            "nodes": [10, 25],
        }),
    )
    print(sweep.format_table(columns=("scenario", "nodes", "success_rate", "makespan_mean")))


if __name__ == "__main__":
    main()
